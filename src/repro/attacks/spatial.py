"""Spatial partitioning: BGP hijacks, stratum isolation, nation blocks.

Implements §V-A's attack procedure end to end: the malicious AS forges
more-specific announcements for the victim AS's most populated prefixes
(greedy order from the Figure 4 analysis), installs them in the routing
table, and every captured node is eclipsed.  Variants cover the other
spatial adversaries the paper discusses: isolating mining pools by
hijacking their stratum servers (Table IV), and a nation-state ordering
its ASes to drop Bitcoin traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.hijack import hijack_curve, prefixes_for_fraction
from ..analysis.poolmap import PoolMapping, map_pools
from ..errors import AttackError
from ..netsim.network import Network
from ..topology.bgp import BgpHijack, RoutingTable
from ..topology.geo import NationStatePolicy
from ..topology.topology import Topology
from .results import AttackOutcome, AttackResult

__all__ = ["SpatialAttack", "StratumIsolation", "NationStateBlock"]


@dataclass
class SpatialAttack:
    """A BGP prefix hijack against one AS's Bitcoin nodes.

    Parameters:
        topology: Spatial ground truth.
        attacker_asn: The forging AS.
        target_asn: The victim AS.
        target_fraction: Node fraction the attacker wants captured;
            drives the greedy prefix selection (Figure 4 curve).
    """

    topology: Topology
    attacker_asn: int
    target_asn: int
    target_fraction: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.target_fraction <= 1.0:
            raise AttackError("target fraction in (0,1]", value=self.target_fraction)
        if self.target_asn not in self.topology.ases:
            raise AttackError("unknown target AS", asn=self.target_asn)
        if self.target_asn not in self.topology.pools:
            raise AttackError("target AS has no prefix pool", asn=self.target_asn)

    def plan(self):
        """The prefixes the greedy attacker will hijack."""
        pool = self.topology.pool(self.target_asn)
        return prefixes_for_fraction(pool, self.target_fraction)

    def execute(
        self,
        table: Optional[RoutingTable] = None,
        network: Optional[Network] = None,
    ) -> AttackResult:
        """Install the hijack; optionally eclipse victims in a network.

        Returns an :class:`AttackResult` whose effort is the number of
        hijacked prefixes and whose metrics include the captured node
        fraction — the two axes of Figure 4.
        """
        table = table if table is not None else self.topology.build_routing_table()
        victim_prefixes = self.plan()
        hijack = BgpHijack(
            attacker_asn=self.attacker_asn, victim_prefixes=victim_prefixes
        )
        announcements = hijack.apply(table)

        pool = self.topology.pool(self.target_asn)
        victims: List[int] = []
        for node_id in self.topology.nodes_in_as(self.target_asn):
            ip = pool.node_ip(node_id)
            if table.origin_of(ip) == self.attacker_asn:
                victims.append(node_id)
        total = len(self.topology.nodes_in_as(self.target_asn))
        captured_fraction = len(victims) / total if total else 0.0

        if network is not None:
            present = [v for v in victims if v in network.nodes]
            network.eclipse(present)

        outcome = (
            AttackOutcome.SUCCESS
            if captured_fraction >= self.target_fraction
            else AttackOutcome.PARTIAL
            if victims
            else AttackOutcome.FAILED
        )
        return AttackResult(
            attack="spatial",
            outcome=outcome,
            victims=tuple(victims),
            effort=float(len(victim_prefixes)),
            metrics={
                "captured_fraction": captured_fraction,
                "announcements": float(announcements),
                "target_as_nodes": float(total),
            },
        )

    def cost_curve(self):
        """The full Figure 4 curve for the target AS."""
        return hijack_curve(self.topology.pool(self.target_asn))


@dataclass
class StratumIsolation:
    """Isolating mining pools by hijacking their stratum ASes (§V-A).

    "If an attacker hijacks 3 ASes, he can isolate more than 60% of the
    Bitcoin hash power" — this attack picks the fewest stratum-hosting
    ASes reaching ``target_hash_share`` and marks every pool whose
    stratum lives there unreachable.
    """

    target_hash_share: float = 0.60
    mapping: PoolMapping = field(default_factory=map_pools)

    def __post_init__(self) -> None:
        if not 0.0 < self.target_hash_share <= 1.0:
            raise AttackError("target share in (0,1]")

    def plan(self) -> List[int]:
        """ASes to hijack, fewest-first."""
        return self.mapping.top_asns_for_share(self.target_hash_share)

    def execute(self, network: Optional[Network] = None) -> AttackResult:
        """Compute (and optionally apply) the isolation.

        With a network, every pool whose stratum AS is hijacked has its
        stratum marked unreachable, halting its block production.
        """
        asns = self.plan()
        isolated_share = sum(
            share for asn, share in self.mapping.asn_shares.items() if asn in asns
        )
        stopped_pools = 0
        if network is not None:
            for pool in network.pools:
                if pool.stratum.asn in asns:
                    pool.stratum.reachable = False
                    stopped_pools += 1
        return AttackResult(
            attack="stratum_isolation",
            outcome=(
                AttackOutcome.SUCCESS
                if isolated_share >= self.target_hash_share
                else AttackOutcome.PARTIAL
            ),
            victims=(),
            effort=float(len(asns)),
            metrics={
                "isolated_hash_share": isolated_share,
                "hijacked_ases": float(len(asns)),
                "stopped_pools": float(stopped_pools),
            },
        )


@dataclass
class NationStateBlock:
    """A nation-state severing Bitcoin traffic through its ASes (§III).

    The paper's example: China's jurisdiction carries ~60% of mining
    traffic; a ban partitions every node and stratum server hosted in
    its ASes.
    """

    topology: Topology
    country: str

    def execute(self, network: Optional[Network] = None) -> AttackResult:
        policy = NationStatePolicy.for_country(self.country, self.topology.ases)
        if not policy.blocked_asns:
            raise AttackError("country hosts no ASes", country=self.country)
        victims: List[int] = []
        for asn in policy.blocked_asns:
            victims.extend(self.topology.nodes_in_as(asn))
        node_fraction = policy.blocked_fraction(self.topology.nodes_per_as())
        mapping = map_pools()
        blocked_hash = sum(
            share
            for asn, share in mapping.asn_shares.items()
            if asn in policy.blocked_asns
        )
        if network is not None:
            network.eclipse([v for v in victims if v in network.nodes])
            for pool in network.pools:
                if pool.stratum.asn in policy.blocked_asns:
                    pool.stratum.reachable = False
        return AttackResult(
            attack="nation_state_block",
            outcome=AttackOutcome.SUCCESS if victims else AttackOutcome.FAILED,
            victims=tuple(victims),
            effort=float(len(policy.blocked_asns)),
            metrics={
                "blocked_node_fraction": node_fraction,
                "blocked_hash_share": blocked_hash,
                "blocked_ases": float(len(policy.blocked_asns)),
            },
        )
