"""Logical partitioning: exploiting client software diversity (§V-D).

The paper's logical attack has two tracks, both implemented here:

1. **Vulnerability exploitation** — join the Table VIII version census
   against the NVD records: a CVE that crashes a version range (e.g.
   CVE-2018-17144's duplicate-input DoS) partitions every node running
   it out of the network in one shot.
2. **Malicious client adoption** — a modified client gains adoption by
   offering benefits (the Falcon example); once a fraction of nodes
   runs it, the attacker can flip them into relays for counterfeit
   blocks, isolate their peers, or DoS neighbours.  The attack's reach
   is the adopted fraction plus the peers those nodes can mislead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..crawler.snapshot import NetworkSnapshot
from ..datagen.nvd import CVE_RECORDS, CveRecord, cves_affecting
from ..errors import AttackError
from ..netsim.network import Network
from .results import AttackOutcome, AttackResult

__all__ = ["LogicalAttackReport", "LogicalAttack"]


@dataclass(frozen=True)
class LogicalAttackReport:
    """Exposure assessment of the network's software census.

    Attributes:
        total_nodes: Census size.
        distinct_versions: Count of distinct client variants (288 in
            the paper).
        version_shares: Version -> node share.
        cve_exposure: CVE id -> fraction of nodes affected.
        dominant_version_share: Share of the most common version
            (36.28% in the paper — the "reassuring" ceiling §VI notes).
    """

    total_nodes: int
    distinct_versions: int
    version_shares: Dict[str, float]
    cve_exposure: Dict[str, float]
    dominant_version_share: float


@dataclass
class LogicalAttack:
    """Partition planning against the software census.

    Parameters:
        snapshot: The crawled network (provides the version census).
        cves: Vulnerability records to join against (defaults to the
            paper's pinned NVD set).
    """

    snapshot: NetworkSnapshot
    cves: Tuple[CveRecord, ...] = CVE_RECORDS

    def assess(self) -> LogicalAttackReport:
        """Compute the census exposure report."""
        counts = self.snapshot.nodes_per_version()
        total = sum(counts.values())
        shares = {version: count / total for version, count in counts.items()}
        exposure: Dict[str, float] = {}
        for cve in self.cves:
            affected = sum(
                count for version, count in counts.items() if cve.affects(version)
            )
            exposure[cve.cve_id] = affected / total
        dominant = max(shares.values()) if shares else 0.0
        return LogicalAttackReport(
            total_nodes=total,
            distinct_versions=len(counts),
            version_shares=shares,
            cve_exposure=exposure,
            dominant_version_share=dominant,
        )

    def crash_victims(self, cve_id: str) -> List[int]:
        """Nodes knocked out by exploiting ``cve_id`` network-wide."""
        cve = next((c for c in self.cves if c.cve_id == cve_id), None)
        if cve is None:
            raise AttackError("unknown CVE", cve_id=cve_id)
        return [
            record.node_id
            for record in self.snapshot.records
            if record.up and cve.affects(record.software_version)
        ]

    def execute_crash(
        self, cve_id: str, network: Optional[Network] = None
    ) -> AttackResult:
        """Exploit ``cve_id``: every affected node goes offline.

        With a live network, victims are set offline, which both
        removes their relay capacity and (if any are miners' hosts)
        their hash power — the cascade §V-D describes.
        """
        victims = self.crash_victims(cve_id)
        total_up = len(self.snapshot.up_nodes())
        fraction = len(victims) / total_up if total_up else 0.0
        if network is not None:
            network.set_offline([v for v in victims if v in network.nodes])
        return AttackResult(
            attack="logical_crash",
            outcome=(
                AttackOutcome.SUCCESS
                if fraction >= 0.5
                else AttackOutcome.PARTIAL
                if victims
                else AttackOutcome.FAILED
            ),
            victims=tuple(victims),
            effort=1.0,  # one exploit, network-wide
            metrics={"crashed_fraction": fraction, "cve_count": 1.0},
        )

    # ------------------------------------------------------------------
    def adoption_reach(
        self,
        adopted_fraction: float,
        peers_per_node: int = 8,
    ) -> Dict[str, float]:
        """Reach of a malicious client at ``adopted_fraction`` adoption.

        Returns the direct reach (adopters) and the relay reach — the
        expected fraction of honest nodes with at least one adopter
        peer, ``1 - (1 - a)^p`` under random peering — the population
        the modified clients can feed false information (§V-D's
        "help the spread of malicious blocks").
        """
        if not 0.0 <= adopted_fraction <= 1.0:
            raise AttackError("adoption fraction in [0,1]")
        if peers_per_node < 1:
            raise AttackError("peers_per_node must be >= 1")
        relay_reach = 1.0 - (1.0 - adopted_fraction) ** peers_per_node
        return {
            "direct": adopted_fraction,
            "relay": relay_reach,
            "combined": adopted_fraction
            + (1.0 - adopted_fraction) * relay_reach,
        }
