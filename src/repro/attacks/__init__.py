"""The four partitioning attack families (paper §V).

- :mod:`repro.attacks.adversary` — the §III threat model: adversary
  types, capabilities, and the "adversarial view" of the network;
- :mod:`repro.attacks.spatial` — BGP prefix hijacks against ASes and
  organizations, stratum-server isolation, nation-state blocks (§V-A);
- :mod:`repro.attacks.temporal` — counterfeit-chain feeding against
  lagging nodes, with the Table V/VI planning machinery (§V-B);
- :mod:`repro.attacks.spatiotemporal` — the combined attack that
  hijacks synced ASes and misleads lagging nodes (§V-C);
- :mod:`repro.attacks.logical` — software-diversity exploitation:
  CVE-based partitions and malicious-client adoption (§V-D);
- :mod:`repro.attacks.doublespend` — the double-spend implication
  executed end to end across a partition;
- :mod:`repro.attacks.eclipse` — protocol-level eclipse via addr
  flooding (the Heilman-style attack spatial partitioning facilitates);
- :mod:`repro.attacks.results` — the common result schema.
"""

from .adversary import Adversary, AdversaryType, AdversaryView
from .doublespend import DoubleSpendAttack, DoubleSpendOutcome
from .eclipse import EclipseAttack
from .logical import LogicalAttack, LogicalAttackReport
from .majority import MajorityAttack
from .results import AttackOutcome, AttackResult
from .spatial import NationStateBlock, SpatialAttack, StratumIsolation
from .spatiotemporal import SpatioTemporalAttack, SpatioTemporalPlan
from .temporal import TemporalAttack, TemporalAttackPlan

__all__ = [
    "Adversary",
    "AdversaryType",
    "AdversaryView",
    "DoubleSpendAttack",
    "DoubleSpendOutcome",
    "EclipseAttack",
    "LogicalAttack",
    "LogicalAttackReport",
    "MajorityAttack",
    "AttackOutcome",
    "AttackResult",
    "NationStateBlock",
    "SpatialAttack",
    "StratumIsolation",
    "SpatioTemporalAttack",
    "SpatioTemporalPlan",
    "TemporalAttack",
    "TemporalAttackPlan",
]
