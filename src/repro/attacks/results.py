"""Common result schema for attack executions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["AttackOutcome", "AttackResult"]


class AttackOutcome(enum.Enum):
    """Coarse outcome classification."""

    SUCCESS = "success"
    PARTIAL = "partial"
    FAILED = "failed"


@dataclass(frozen=True)
class AttackResult:
    """What an attack execution achieved.

    Attributes:
        attack: Attack family name (``"spatial"``, ``"temporal"``...).
        outcome: Coarse classification.
        victims: Node ids isolated / misled.
        effort: The attack's cost metric (hijacked prefixes for spatial
            attacks, seconds of feeding for temporal ones).
        metrics: Attack-specific numbers (fractions, heights, shares).
    """

    attack: str
    outcome: AttackOutcome
    victims: Tuple[int, ...]
    effort: float
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def num_victims(self) -> int:
        return len(self.victims)

    def metric(self, name: str, default: float = 0.0) -> float:
        return self.metrics.get(name, default)
