"""The 51% attack enabled by partitioning (§V-A implications).

    "By isolating a majority of the network's hash power, the attacker
    can launch the 51% attack on Bitcoin which will grant him a
    permanent control over the blockchain."

The attack composes the spatial machinery: stratum isolation removes
competing hash power until the adversary's share of the *remaining*
power exceeds one half, at which point its chain outruns the honest
remnant indefinitely.  The module plans the isolation, executes it on
a simulation, and measures chain control over a horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.poolmap import PoolMapping, map_pools
from ..errors import AttackError
from ..netsim.network import Network
from ..types import Seconds
from .results import AttackOutcome, AttackResult

__all__ = ["MajorityAttack"]


@dataclass
class MajorityAttack:
    """Gain >50% of the *effective* hash rate by isolating competitors.

    Parameters:
        network: Simulation whose pools include the attacker's.
        attacker_pool_name: The adversary's pool (already mining).
        mapping: Stratum-AS mapping used to plan the isolation
            (defaults to the Table IV dataset).
    """

    network: Network
    attacker_pool_name: str
    mapping: PoolMapping = field(default_factory=map_pools)

    def __post_init__(self) -> None:
        if self._attacker_pool() is None:
            raise AttackError("attacker pool not found", name=self.attacker_pool_name)

    def _attacker_pool(self):
        for pool in self.network.pools:
            if pool.name == self.attacker_pool_name:
                return pool
        return None

    # ------------------------------------------------------------------
    def effective_share(self) -> float:
        """Attacker's share of the currently-active hash rate."""
        attacker = self._attacker_pool()
        total = self.network.total_hash_share(active_only=True)
        if total <= 0 or not attacker.active:
            return 0.0
        return attacker.hash_share / total

    def plan(self) -> List[int]:
        """Fewest stratum ASes to hijack for a majority.

        Competing pools are removed greedily by their stratum-AS hash
        weight until the attacker's effective share exceeds 0.5.
        """
        attacker = self._attacker_pool()
        active = [
            pool
            for pool in self.network.pools
            if pool is not attacker and pool.active
        ]
        remaining = sum(pool.hash_share for pool in active)
        # AS -> share of *this network's* competing pools behind it.
        # The attacker's own stratum AS is untouchable: hijacking it
        # would sever the attacker's hash power too.
        as_weight: Dict[int, float] = {}
        for pool in active:
            if pool.stratum.asn == attacker.stratum.asn:
                continue
            as_weight[pool.stratum.asn] = (
                as_weight.get(pool.stratum.asn, 0.0) + pool.hash_share
            )
        chosen: List[int] = []
        share = attacker.hash_share
        for asn, weight in sorted(as_weight.items(), key=lambda kv: -kv[1]):
            if share / (share + remaining) > 0.5:
                break
            chosen.append(asn)
            remaining -= weight
        if share / max(share + remaining, 1e-12) <= 0.5:
            raise AttackError(
                "cannot reach majority by stratum isolation",
                attacker_share=share,
            )
        return chosen

    def execute(self, horizon: Seconds = 24 * 3600) -> AttackResult:
        """Isolate competitors, run, and measure chain control.

        Chain control = fraction of main-chain blocks (mined after the
        isolation) produced by the attacker, observed at the attacker's
        node.
        """
        attacker = self._attacker_pool()
        target_asns = set(self.plan())
        stopped = 0
        for pool in self.network.pools:
            if pool is not attacker and pool.stratum.asn in target_asns:
                pool.stratum.reachable = False
                stopped += 1

        node = self.network.node(attacker.node_id)
        height_before = node.height
        self.network.run_for(horizon)

        chain = node.tree.main_chain()
        new_blocks = [b for b in chain if b.height > height_before]
        attacker_blocks = [
            b for b in new_blocks if b.header.miner_id == attacker.pool_id
        ]
        control = (
            len(attacker_blocks) / len(new_blocks) if new_blocks else 0.0
        )
        return AttackResult(
            attack="majority",
            outcome=(
                AttackOutcome.SUCCESS
                if control > 0.5
                else AttackOutcome.PARTIAL
                if control > 0.0
                else AttackOutcome.FAILED
            ),
            victims=(),
            effort=float(len(target_asns)),
            metrics={
                "effective_share": self.effective_share(),
                "chain_control": control,
                "stopped_pools": float(stopped),
                "new_blocks": float(len(new_blocks)),
            },
        )
