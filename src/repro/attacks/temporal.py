"""Temporal partitioning: counterfeit chains fed to lagging nodes.

Implements the Figure 5 attack end to end on the event-driven
simulator:

1. **Target selection** — the adversary crawls the network (or uses a
   recorded lag series) and picks nodes 1-5 blocks behind (§III);
   :class:`TemporalAttackPlan` also runs the Table V/VI machinery to
   choose how many nodes are isolatable within a timing budget.
2. **Connection** — the attacker's node links to each victim (cheap:
   "it is inexpensive to setup new nodes", §V-B).
3. **Feeding** — the attacker's mining pool (default hash share 0.30,
   as in Figure 7) switches to counterfeit mode: its blocks extend a
   private branch delivered only to victims, who accept it because it
   is ahead of their stale view.
4. **Measurement** — how many victims follow the counterfeit chain,
   for how long, and what happens on recovery (reorg depth,
   transaction reversal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.timing import min_isolation_time
from ..analysis.vulnerable import max_vulnerable_nodes
from ..crawler.timeseries import ConsensusTimeSeries
from ..errors import AttackError
from ..netsim.miner import MiningPool
from ..netsim.network import Network
from ..types import Seconds
from .results import AttackOutcome, AttackResult

__all__ = ["TemporalAttackPlan", "TemporalAttack"]


@dataclass(frozen=True)
class TemporalAttackPlan:
    """Output of the target-selection stage.

    Attributes:
        victim_count: Nodes the attacker will try to isolate (m).
        window_minutes: Timing constraint T of the Table V query.
        min_time_seconds: Table VI bound — minimum seconds to connect
            to all victims with success probability >= ``probability``.
        rate: Assumed exponential connection rate λ.
        probability: Target success probability (paper uses 0.8).
        feasible: Whether the bound fits inside the observed window.
    """

    victim_count: int
    window_minutes: int
    min_time_seconds: int
    rate: float
    probability: float

    @property
    def feasible(self) -> bool:
        return self.min_time_seconds <= self.window_minutes * 60

    @classmethod
    def from_series(
        cls,
        series: ConsensusTimeSeries,
        window_minutes: int = 10,
        min_lag: int = 1,
        rate: float = 0.8,
        probability: float = 0.8,
        victim_cap: Optional[int] = None,
    ) -> "TemporalAttackPlan":
        """Plan from a recorded lag series (the §V-B optimization).

        Finds the maximum sustained-vulnerable population for the
        window (Table V), optionally caps it, and prices the isolation
        time with the Table VI bound.
        """
        windows = max_vulnerable_nodes(series, min_lag, window_minutes)
        m = windows.max_nodes
        if victim_cap is not None:
            m = min(m, victim_cap)
        if m == 0:
            raise AttackError("no vulnerable nodes in any window")
        return cls(
            victim_count=m,
            window_minutes=window_minutes,
            min_time_seconds=min_isolation_time(m, rate, probability),
            rate=rate,
            probability=probability,
        )


@dataclass
class TemporalAttack:
    """Executes the counterfeit-feeding attack on a simulation.

    Parameters:
        network: The running network.
        attacker_node: Node id the adversary controls.
        hash_share: Attacker's mining share (0.30 in the paper's runs).
        min_lag: Victims must trail the tip by at least this many blocks.
        max_victims: Cap on the victim set (None = all vulnerable).
        sever_victims: Also eclipse victims from honest peers.  The
            paper's adversary "would seek to disrupt communication";
            without severing, victims recover as soon as the honest
            chain outruns the attacker's (the Figure 7(c) dynamics).
    """

    network: Network
    attacker_node: int
    hash_share: float = 0.30
    min_lag: int = 1
    max_victims: Optional[int] = None
    sever_victims: bool = False
    pool: Optional[MiningPool] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.hash_share < 1.0:
            raise AttackError("hash share in (0,1)", share=self.hash_share)
        if self.attacker_node not in self.network.nodes:
            raise AttackError("attacker node missing", node=self.attacker_node)

    # ------------------------------------------------------------------
    def select_victims(self) -> List[int]:
        """Crawl the network for nodes >= ``min_lag`` blocks behind."""
        tip = self.network.network_height()
        victims = [
            node_id
            for node_id, node in self.network.nodes.items()
            if node_id != self.attacker_node
            and node.online
            and node.lag(tip) >= self.min_lag
        ]
        victims.sort(
            key=lambda nid: -self.network.node(nid).lag(tip)
        )  # deepest laggards first: cheapest to mislead
        if self.max_victims is not None:
            victims = victims[: self.max_victims]
        return victims

    def launch(self, victims: Optional[Sequence[int]] = None) -> List[int]:
        """Connect to victims and start counterfeit mining.

        Returns the victim list.  The attack keeps running until
        :meth:`measure`/:meth:`stop`; callers advance the simulation
        in between (``network.run_for``).
        """
        chosen = list(victims) if victims is not None else self.select_victims()
        if not chosen:
            raise AttackError("no victims available")
        self.network.attacker_ids.add(self.attacker_node)
        for victim in chosen:
            if victim not in self.network.node(self.attacker_node).peers:
                self.network.connect(self.attacker_node, victim)
        if self.sever_victims:
            self.network.eclipse(chosen)
        self.pool = self.network.add_pool(
            name="attacker",
            hash_share=self.hash_share,
            node_id=self.attacker_node,
        )
        self.pool.enter_counterfeit_mode(chosen)
        self._victims = chosen
        return chosen

    def measure(self) -> AttackResult:
        """Snapshot the attack's current effect."""
        if self.pool is None:
            raise AttackError("attack not launched")
        on_counterfeit = set(self.network.nodes_on_counterfeit_chain())
        misled = [v for v in self._victims if v in on_counterfeit]
        honest = self.network.honest_height()
        partitioned_fraction = (
            len(on_counterfeit) / len(self.network.nodes) if self.network.nodes else 0
        )
        outcome = (
            AttackOutcome.SUCCESS
            if misled and len(misled) >= 0.5 * len(self._victims)
            else AttackOutcome.PARTIAL
            if misled
            else AttackOutcome.FAILED
        )
        return AttackResult(
            attack="temporal",
            outcome=outcome,
            victims=tuple(misled),
            effort=float(self.pool.blocks_mined),
            metrics={
                "targeted": float(len(self._victims)),
                "misled": float(len(misled)),
                "partitioned_fraction": partitioned_fraction,
                "counterfeit_blocks": float(self.pool.blocks_mined),
                "honest_height": float(honest),
                "network_height": float(self.network.network_height()),
            },
        )

    def stop(self) -> None:
        """End the attack: stop feeding and heal any severed links."""
        if self.pool is not None:
            self.pool.exit_counterfeit_mode()
            self.pool.stratum.reachable = False  # idles the attacker pool
        if self.sever_victims:
            self.network.heal(self._victims)

    # ------------------------------------------------------------------
    def run(self, duration: Seconds) -> AttackResult:
        """Convenience: launch, simulate ``duration``, measure, stop."""
        self.launch()
        self.network.run_for(duration)
        result = self.measure()
        self.stop()
        return result
