"""The threat model (paper §III): adversary types, capabilities, view.

The paper assumes different adversaries per attack family — a
malicious AS/ISP or nation-state for spatial partitioning, a mining
pool for temporal partitioning, a software developer for logical
partitioning — each with a *consistent view of the network* equivalent
to what Bitnodes exposes.  :class:`AdversaryView` packages exactly the
four information items §III enumerates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.centralization import top_entities
from ..crawler.snapshot import NetworkSnapshot
from ..crawler.timeseries import ConsensusTimeSeries
from ..errors import AttackError

__all__ = ["AdversaryType", "Capability", "Adversary", "AdversaryView"]


class Capability(enum.Enum):
    """Atomic adversarial capabilities from §III."""

    BGP_ANNOUNCE = "bgp_announce"  # forge routing announcements
    POLICY_ENFORCEMENT = "policy_enforcement"  # block traffic by decree
    MINING = "mining"  # produce (counterfeit) blocks
    CRAWLING = "crawling"  # consistent Bitnodes-like view
    SOFTWARE_DISTRIBUTION = "software_distribution"  # ship client mods


class AdversaryType(enum.Enum):
    """The adversary archetypes of the threat model."""

    MALICIOUS_AS = "malicious_as"
    ISP_ORGANIZATION = "isp_organization"
    NATION_STATE = "nation_state"
    MINING_POOL = "mining_pool"
    SOFTWARE_DEVELOPER = "software_developer"

    @property
    def capabilities(self) -> Tuple[Capability, ...]:
        crawl = Capability.CRAWLING  # every adversary can crawl (§III)
        return {
            AdversaryType.MALICIOUS_AS: (Capability.BGP_ANNOUNCE, crawl),
            AdversaryType.ISP_ORGANIZATION: (
                Capability.BGP_ANNOUNCE,
                Capability.POLICY_ENFORCEMENT,
                crawl,
            ),
            AdversaryType.NATION_STATE: (Capability.POLICY_ENFORCEMENT, crawl),
            AdversaryType.MINING_POOL: (Capability.MINING, crawl),
            AdversaryType.SOFTWARE_DEVELOPER: (
                Capability.SOFTWARE_DISTRIBUTION,
                crawl,
            ),
        }[self]


@dataclass(frozen=True)
class Adversary:
    """A concrete adversary instance.

    Attributes:
        kind: Archetype (decides capabilities).
        asn: Attacking AS (for BGP-capable adversaries).
        hash_share: Hash-rate fraction (for mining pools; the paper's
            simulated temporal attacker holds 0.30).
        country: Jurisdiction (for nation-states).
    """

    kind: AdversaryType
    asn: Optional[int] = None
    hash_share: float = 0.0
    country: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.hash_share < 1.0:
            raise AttackError("hash share must be in [0,1)", share=self.hash_share)
        if self.can(Capability.BGP_ANNOUNCE) and self.asn is None:
            raise AttackError("BGP-capable adversary needs an ASN", kind=self.kind)
        if self.kind is AdversaryType.MINING_POOL and self.hash_share <= 0.0:
            raise AttackError("mining adversary needs hash share")
        if self.kind is AdversaryType.NATION_STATE and not self.country:
            raise AttackError("nation-state adversary needs a country")

    def can(self, capability: Capability) -> bool:
        return capability in self.kind.capabilities


@dataclass
class AdversaryView:
    """The §III "adversarial view": what the attacker knows.

    1. Top ASes/organizations hosting nodes and their distribution;
    2. the temporal spread of block information (the lag series);
    3. vulnerable nodes (location, uptime, latency, consensus state);
    4. vulnerable network entities (prefix pools, hosting patterns).

    Built from crawler products only — the adversary sees nothing a
    real Bitnodes consumer could not.
    """

    snapshot: NetworkSnapshot
    series: Optional[ConsensusTimeSeries] = None

    def top_ases(self, k: int = 10) -> List[Tuple[int, int, float]]:
        return top_entities(self.snapshot.nodes_per_as(), k)

    def top_orgs(self, k: int = 10) -> List[Tuple[str, int, float]]:
        return top_entities(self.snapshot.nodes_per_org(), k)

    def vulnerable_nodes(self, min_lag: int = 1, max_lag: int = 5) -> List[int]:
        """Nodes currently ``min_lag``..``max_lag`` blocks behind — the
        §III target set ("1-5 blocks behind")."""
        return [
            record.node_id
            for record in self.snapshot.records
            if record.up and min_lag <= record.block_idx <= max_lag
        ]

    def synced_nodes(self) -> List[int]:
        return [record.node_id for record in self.snapshot.synced_nodes()]

    def nodes_in_as(self, asn: int) -> List[int]:
        return [r.node_id for r in self.snapshot.records if r.asn == asn]

    def lag_of(self, node_id: int) -> int:
        return self.snapshot.get(node_id).block_idx
