"""Eclipse attack by peer-table poisoning (§V-A implications).

The paper lists eclipse attacks (Heilman et al.) among the attacks
spatial partitioning "facilitates".  Beyond the routing-level eclipse
(:meth:`Network.eclipse`), this module implements the protocol-level
variant: the adversary floods a victim's address manager with its own
sybil addresses (``addr`` gossip) until the victim's peer table is
attacker-dominated, then monopolizes its view without touching BGP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import AttackError
from ..netsim.messages import AddrMsg
from ..netsim.network import Network
from ..types import Seconds
from .results import AttackOutcome, AttackResult

__all__ = ["EclipseAttack"]


@dataclass
class EclipseAttack:
    """Peer-table takeover of one victim via addr flooding.

    Parameters:
        network: The running network.
        victim: Node id to eclipse.
        sybil_ids: Attacker-controlled node ids used to fill the
            victim's peer table ("it is inexpensive to setup new
            nodes", §V-B).
        takeover_fraction: Attack succeeds when at least this share of
            the victim's peers are sybils.
    """

    network: Network
    victim: int
    sybil_ids: Sequence[int]
    takeover_fraction: float = 0.75

    def __post_init__(self) -> None:
        if self.victim not in self.network.nodes:
            raise AttackError("unknown victim", node=self.victim)
        missing = [s for s in self.sybil_ids if s not in self.network.nodes]
        if missing:
            raise AttackError("unknown sybil ids", ids=missing)
        if self.victim in set(self.sybil_ids):
            raise AttackError("victim cannot be its own sybil")
        if not 0.0 < self.takeover_fraction <= 1.0:
            raise AttackError("takeover fraction in (0,1]")

    # ------------------------------------------------------------------
    def sybil_share(self) -> float:
        """Current fraction of the victim's peers that are sybils."""
        peers = self.network.node(self.victim).peers
        if not peers:
            return 0.0
        sybils = set(self.sybil_ids)
        return sum(1 for p in peers if p in sybils) / len(peers)

    def execute(self, duration: Seconds = 3600.0) -> AttackResult:
        """Flood addr gossip, displace honest peers, measure takeover.

        The displacement models restart-based eclipse: a real attacker
        waits for (or forces) a victim restart so the poisoned address
        manager drives reconnection; here the honest links are dropped
        as the sybil connections come up, one per addr round.
        """
        net = self.network
        victim_node = net.node(self.victim)
        sybils = list(self.sybil_ids)
        net.attacker_ids.update(sybils)
        # Sybils are the adversary's nodes: they hold connections open
        # but withhold inventory from the victim, starving its view.
        for sybil in sybils:
            net.node(sybil).suppress_inv_to.add(self.victim)

        rounds = max(1, len(sybils))
        interval = duration / rounds
        for index, sybil in enumerate(sybils):
            net.sim.schedule(
                index * interval,
                lambda s=sybil: self._poison_round(s),
            )
        net.run_for(duration)

        share = self.sybil_share()
        if share >= self.takeover_fraction:
            # Monopolized: the remaining honest links go dark (the
            # sybils simply never relay, so we cut them for fidelity).
            for peer in list(victim_node.peers):
                if peer not in set(sybils):
                    net.disconnect(self.victim, peer)
            outcome = AttackOutcome.SUCCESS
        elif share > 0:
            outcome = AttackOutcome.PARTIAL
        else:
            outcome = AttackOutcome.FAILED
        return AttackResult(
            attack="eclipse",
            outcome=outcome,
            victims=(self.victim,) if share > 0 else (),
            effort=float(len(sybils)),
            metrics={
                "sybil_share": self.sybil_share(),
                "victim_peers": float(len(victim_node.peers)),
            },
        )

    def _poison_round(self, sybil: int) -> None:
        """One addr-flood round: advertise the sybil, displace a peer."""
        net = self.network
        victim_node = net.node(self.victim)
        sybil_set = set(self.sybil_ids)
        # The sybil advertises itself to the victim.
        net.node(sybil).send(self.victim, AddrMsg(addresses=(sybil,)))
        if not victim_node.has_peer(sybil):
            net.connect(self.victim, sybil)
        # Displace one honest peer (restart-based table churn).
        for peer in list(victim_node.peers):
            if peer not in sybil_set:
                net.disconnect(self.victim, peer)
                break
