"""Spatio-temporal partitioning: hijack the synced, mislead the lagging.

§V-C's combined attack: up-to-date nodes reject counterfeit blocks, so
they are attacked spatially (BGP hijack of their hosting ASes), while
lagging nodes are attacked temporally (counterfeit feeding).  The
attack "is adjustable to the capabilities of an attacker": a pure AS
picks only the spatial half, a pure pool only the temporal half, and a
cloud provider with both capabilities (the paper's case study) waits
for a moment when synced nodes are few, then launches both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.synced import synced_as_table
from ..crawler.timeseries import ConsensusTimeSeries
from ..errors import AttackError
from ..netsim.network import Network
from ..topology.topology import Topology
from ..types import Seconds
from .results import AttackOutcome, AttackResult
from .spatial import SpatialAttack
from .temporal import TemporalAttack

__all__ = ["SpatioTemporalPlan", "SpatioTemporalAttack"]


@dataclass(frozen=True)
class SpatioTemporalPlan:
    """Where and when to strike.

    Attributes:
        strike_time: Sample time with the fewest synced nodes (the
            paper's trigger: synced count dropping toward ~3,000).
        synced_count: Synced nodes at that moment.
        lagging_count: Nodes 1+ behind at that moment.
        target_asns: ASes hosting the most synced nodes (Table VII's
            top-5) — the spatial half's hijack list.
        spatial_coverage: Fraction of synced nodes inside those ASes.
    """

    strike_time: float
    synced_count: int
    lagging_count: int
    target_asns: Tuple[int, ...]
    spatial_coverage: float

    @classmethod
    def from_series(
        cls,
        series: ConsensusTimeSeries,
        topology: Optional[Topology] = None,
        num_ases: int = 5,
    ) -> "SpatioTemporalPlan":
        """Plan from a recorded day of lag data (Figure 8 workflow)."""
        if series.node_asns is None:
            raise AttackError("series lacks per-node ASN mapping")
        synced_series = (series.lags == 0).sum(axis=1)
        strike_index = int(np.argmin(synced_series))
        rows = synced_as_table(series, topology, k=num_ases)
        coverage = sum(row.percentage for row in rows) / 100.0
        lagging = int(
            ((series.lags[strike_index] >= 1)).sum()
        )
        return cls(
            strike_time=float(series.times[strike_index]),
            synced_count=int(synced_series[strike_index]),
            lagging_count=lagging,
            target_asns=tuple(row.asn for row in rows),
            spatial_coverage=coverage,
        )


@dataclass
class SpatioTemporalAttack:
    """Executes both halves against a live simulation.

    Parameters:
        network: The simulation under attack.
        topology: Spatial ground truth (node ids shared with network).
        attacker_node: The adversary's own node.
        attacker_asn: The adversary's AS (for the hijacks).
        hash_share: Mining share for the temporal half.
        num_target_ases: How many synced-heavy ASes to hijack.
    """

    network: Network
    topology: Topology
    attacker_node: int
    attacker_asn: int
    hash_share: float = 0.30
    num_target_ases: int = 5

    def plan(self) -> Tuple[List[int], List[int]]:
        """(synced victims, lagging victims) from the live network."""
        tip = self.network.network_height()
        synced, lagging = [], []
        for node_id, node in self.network.nodes.items():
            if node_id == self.attacker_node or not node.online:
                continue
            (synced if node.lag(tip) == 0 else lagging).append(node_id)
        return synced, lagging

    def execute(self, duration: Seconds) -> AttackResult:
        """Hijack synced-heavy ASes, feed the laggards, run, measure."""
        synced, lagging = self.plan()
        if not synced and not lagging:
            raise AttackError("no victims available")

        # Spatial half: rank ASes by how many *synced* network nodes
        # they host, hijack the top ones entirely.
        as_synced: Dict[int, int] = {}
        for node_id in synced:
            try:
                asn = self.topology.asn_of(node_id)
            except Exception:
                continue
            if asn in self.topology.pools:
                as_synced[asn] = as_synced.get(asn, 0) + 1
        targets = [
            asn
            for asn, _ in sorted(as_synced.items(), key=lambda kv: -kv[1])[
                : self.num_target_ases
            ]
        ]
        table = self.topology.build_routing_table()
        eclipsed: List[int] = []
        prefixes_hijacked = 0
        for asn in targets:
            spatial = SpatialAttack(
                topology=self.topology,
                attacker_asn=self.attacker_asn,
                target_asn=asn,
                target_fraction=0.95,
            )
            result = spatial.execute(table=table, network=self.network)
            eclipsed.extend(result.victims)
            prefixes_hijacked += int(result.effort)

        # Temporal half: feed every remaining laggard.
        temporal = TemporalAttack(
            network=self.network,
            attacker_node=self.attacker_node,
            hash_share=self.hash_share,
            min_lag=1,
        )
        lag_victims = [v for v in lagging if v not in set(eclipsed)]
        misled_result: Optional[AttackResult] = None
        if lag_victims:
            temporal.launch(lag_victims)
        self.network.run_for(duration)
        if lag_victims:
            misled_result = temporal.measure()
            temporal.stop()

        victims = tuple(set(eclipsed) | set(misled_result.victims if misled_result else ()))
        total = len(self.network.nodes)
        # Disruption is measured against the simulated network, so only
        # victims actually present in it count (the topology may host
        # more nodes than the simulation instantiates).
        victims_in_network = [v for v in victims if v in self.network.nodes]
        disrupted_fraction = len(victims_in_network) / total if total else 0.0
        return AttackResult(
            attack="spatiotemporal",
            outcome=(
                AttackOutcome.SUCCESS
                if disrupted_fraction >= 0.5
                else AttackOutcome.PARTIAL
                if victims
                else AttackOutcome.FAILED
            ),
            victims=victims,
            effort=float(prefixes_hijacked),
            metrics={
                "eclipsed": float(len([v for v in eclipsed if v in self.network.nodes])),
                "misled": float(
                    misled_result.metric("misled") if misled_result else 0.0
                ),
                "hijacked_ases": float(len(targets)),
                "hijacked_prefixes": float(prefixes_hijacked),
                "disrupted_fraction": disrupted_fraction,
            },
        )
