"""Rendering of tables and figure series as text/CSV."""

from .figures import series_to_csv, sparkline
from .tables import format_table

__all__ = ["format_table", "series_to_csv", "sparkline"]
