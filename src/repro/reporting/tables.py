"""Plain-text table rendering for experiment output.

The experiment runner prints each reproduced table in the same
row/column layout the paper uses, so measured-vs-published comparison
is a visual diff.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["format_table"]


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    Column widths adapt to content; floats print with two decimals.
    """
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
