"""Figure-series emission: CSV rows and terminal sparklines.

Figures are reproduced as data series (the benches assert their shape);
these helpers make them inspectable — CSV for external plotting, and a
compact unicode sparkline for terminal output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["series_to_csv", "sparkline"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def series_to_csv(
    columns: Dict[str, Sequence[float]],
    index: Sequence[float],
    index_name: str = "t",
) -> str:
    """Render named series sharing one index as CSV text."""
    names = list(columns)
    for name in names:
        if len(columns[name]) != len(index):
            raise ValueError(
                f"series {name!r} has {len(columns[name])} points, "
                f"index has {len(index)}"
            )
    lines = [",".join([index_name] + names)]
    for i, t in enumerate(index):
        row = [f"{t:g}"] + [f"{columns[name][i]:g}" for name in names]
        lines.append(",".join(row))
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line unicode plot of a series (downsampled to ``width``)."""
    values = list(values)
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(
        _SPARK_CHARS[int((v - low) / span * (len(_SPARK_CHARS) - 1))] for v in values
    )
