"""Fault-tolerant trial execution: retries, timeouts, and degradation.

The original ``TrialEngine`` had all-or-nothing failure semantics: one
raising trial terminated the pool and lost every completed payload,
with no record of *which* trial (and therefore which seed) failed.
This module is the layer that fixes that bug class:

- every per-trial exception is captured into a structured
  :class:`TrialFailure` (experiment id, index, seed, params, traceback,
  worker PID, attempt count) instead of collapsing the batch;
- failed trials are retried a bounded, deterministic number of times
  with the *same seed*, so a retried success is bit-identical to a
  first-try success (trial functions draw all randomness from
  ``trial.seed``, the engine's standing contract);
- per-trial timeouts detect hung workers and dead worker processes are
  noticed via liveness checks; either way the pool is respawned and
  only the unfinished trials are re-dispatched;
- a :class:`FailurePolicy` chooses between fail-fast (``"raise"``),
  degrade-and-report (``"skip"``), and a bounded failure budget
  (``max_failures=N``), and the engine returns partial results plus
  the full failure roster in a :class:`BatchResult`.

The bottom of the module is a deterministic fault-injection harness
(:func:`inject` / :class:`FaultPlan`): crash, hang, error, and
corrupt-payload modes keyed off the trial index, recovering after a
configurable number of attempts.  The fault-smoke test suite and CI
job drive the executors through every failure path with it.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ConfigurationError, ReproError
from ..rng import derive_seed

__all__ = [
    "BatchResult",
    "ExcessiveFailuresError",
    "FailurePolicy",
    "FaultPlan",
    "InjectedFault",
    "TrialExecutionError",
    "TrialFailure",
    "WorkerTraceback",
    "call_trial",
    "execute_batch",
    "inject",
]

#: Parent-side polling cadence while waiting on pool results (seconds).
_POLL_INTERVAL = 0.02

#: Grace added to dispatch-time deadlines to cover worker pickup; the
#: deadline is re-anchored to the actual start once the worker announces.
_DISPATCH_SLACK = 1.0

#: Exit code used by injected crashes (visible in worker exitcodes).
CRASH_EXIT_CODE = 87


# ----------------------------------------------------------------------
# Failure records and errors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrialFailure:
    """One trial's final (post-retry) failure, fully attributed.

    Attributes:
        experiment_id / index / seed / params: The owning
            :class:`~repro.parallel.trials.Trial`'s identity — enough
            to reproduce the failure with ``jobs=1``.
        kind: ``"error"`` (trial raised), ``"timeout"`` (exceeded the
            policy's per-trial timeout), ``"worker-death"`` (the worker
            process died mid-trial), or ``"payload"`` (the payload
            failed to cross the process boundary, e.g. unpicklable).
        error_type / message: Exception class name and message, when
            one was captured.
        traceback_text: Formatted traceback from the failing process
            (empty for timeouts and silent worker deaths).
        worker: PID of the process that ran the failing attempt, when
            known.
        attempts: Total attempts consumed (always ``retries + 1`` for a
            final failure).
    """

    experiment_id: str
    index: int
    seed: int
    params: Tuple[Tuple[str, Any], ...]
    kind: str
    error_type: str
    message: str
    traceback_text: str
    worker: Optional[int]
    attempts: int

    def describe(self) -> str:
        """One-line human-readable form naming the reproducing seed."""
        detail = f"{self.error_type}: {self.message}" if self.error_type else self.kind
        return (
            f"({self.experiment_id}, {self.index}, {self.seed}) "
            f"{self.kind} after {self.attempts} attempt(s): {detail}"
        )


class WorkerTraceback(Exception):
    """Carrier for a traceback captured in a worker process.

    Chained as the ``__cause__`` of :class:`TrialExecutionError` so the
    remote traceback text survives the process boundary even though the
    original exception object could not.
    """

    def __str__(self) -> str:
        text = self.args[0] if self.args else ""
        return f"\n{text}" if text else "worker traceback unavailable"


class TrialExecutionError(ReproError):
    """A trial exhausted its retries; names the reproducing trial.

    The structured context (``experiment_id``, ``index``, ``seed``)
    rides in the message and in :attr:`failure`, so a failed sweep
    always tells the operator which seed to re-run serially.
    """

    def __init__(self, failure: TrialFailure) -> None:
        self.failure = failure
        super().__init__(
            f"trial failed ({failure.kind}) after {failure.attempts} attempt(s): "
            f"{failure.error_type or failure.kind}: {failure.message}",
            experiment_id=failure.experiment_id,
            index=failure.index,
            seed=failure.seed,
        )


class ExcessiveFailuresError(ReproError):
    """More trials failed than ``FailurePolicy.max_failures`` allows."""

    def __init__(self, failures: Sequence[TrialFailure], max_failures: int) -> None:
        self.failures = tuple(failures)
        named = ", ".join(
            f"({f.experiment_id}, {f.index}, {f.seed})" for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)} trial failure(s) exceeded "
            f"max_failures={max_failures}: {named}"
        )


# ----------------------------------------------------------------------
# Policy and batch result
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FailurePolicy:
    """How a batch degrades when trials fail.

    Attributes:
        mode: ``"raise"`` aborts the batch at the first final failure
            (the exception is a :class:`TrialExecutionError` naming the
            trial); ``"skip"`` completes the batch and reports failures
            in the :class:`BatchResult`.
        retries: Re-dispatches allowed per trial after its first
            failure, with the same seed — a retried success is
            bit-identical to a first-try success.
        trial_timeout: Per-trial wall-clock budget in seconds.  Only
            enforceable across a process boundary (``jobs > 1``):
            inline execution cannot be preempted.
        max_failures: In ``"skip"`` mode, the failure budget — when the
            batch ends with *more* than this many failed trials, the
            engine raises :class:`ExcessiveFailuresError` naming every
            one.  ``None`` means unbounded.
    """

    mode: str = "raise"
    retries: int = 0
    trial_timeout: Optional[float] = None
    max_failures: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "skip"):
            raise ConfigurationError(
                "mode must be 'raise' or 'skip'", mode=self.mode
            )
        if (
            isinstance(self.retries, bool)
            or not isinstance(self.retries, int)
            or self.retries < 0
        ):
            raise ConfigurationError("retries must be an int >= 0", retries=self.retries)
        if self.trial_timeout is not None:
            if (
                isinstance(self.trial_timeout, bool)
                or not isinstance(self.trial_timeout, (int, float))
                or self.trial_timeout <= 0
            ):
                raise ConfigurationError(
                    "trial_timeout must be a positive number of seconds",
                    trial_timeout=self.trial_timeout,
                )
        if self.max_failures is not None:
            if self.mode != "skip":
                raise ConfigurationError(
                    "max_failures requires mode='skip'", mode=self.mode
                )
            if (
                isinstance(self.max_failures, bool)
                or not isinstance(self.max_failures, int)
                or self.max_failures < 0
            ):
                raise ConfigurationError(
                    "max_failures must be an int >= 0", max_failures=self.max_failures
                )

    @classmethod
    def strict(cls) -> "FailurePolicy":
        """The default fail-fast policy (no retries, no timeout)."""
        return cls()

    @property
    def attempts_per_trial(self) -> int:
        return self.retries + 1

    def over_budget(self, failure_count: int) -> bool:
        """Has ``failure_count`` final failures already broken the policy?"""
        if failure_count == 0:
            return False
        if self.mode == "raise":
            return True
        return self.max_failures is not None and failure_count > self.max_failures


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batch: partial payloads plus the failure roster.

    ``trials`` and ``payloads`` are aligned in ascending trial-index
    order; a failed (or never-executed, after an abort) trial's payload
    slot holds ``None`` and its index appears in :attr:`failed_indices`
    — check there rather than testing payloads for ``None``, which a
    trial could legitimately return.
    """

    trials: Tuple[Any, ...]
    payloads: Tuple[Any, ...]
    failures: Tuple[TrialFailure, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_indices(self) -> frozenset:
        return frozenset(f.index for f in self.failures)

    def completed(self) -> Dict[int, Any]:
        """Index -> payload for every trial that finished."""
        failed = self.failed_indices
        return {
            trial.index: payload
            for trial, payload in zip(self.trials, self.payloads)
            if trial.index not in failed
        }

    def summary(self) -> str:
        """One-line ``"N ok, M failed"`` report for sweep output."""
        done = len(self.trials) - len(self.failures)
        if not self.failures:
            return f"{done} trial(s) ok"
        named = ", ".join(str(f.index) for f in self.failures)
        return f"{done} trial(s) ok, {len(self.failures)} failed (index {named})"


# ----------------------------------------------------------------------
# Attempt execution (shared by the serial and pool paths)
# ----------------------------------------------------------------------
def call_trial(fn: Callable[..., Any], trial: Any, attempt: int) -> Any:
    """Invoke a trial function, passing the attempt number when asked.

    Ordinary trial functions take ``(trial)`` only; attempt-aware
    callables (the fault injectors) declare ``_accepts_attempt = True``
    and receive ``(trial, attempt)``.  Payload determinism must never
    depend on ``attempt`` — the injectors use it exclusively to decide
    whether to fault, not what to compute.
    """
    if getattr(fn, "_accepts_attempt", False):
        return fn(trial, attempt)
    return fn(trial)


@dataclass(frozen=True)
class _Attempt:
    """One attempt's outcome as shipped back from the executing process."""

    index: int
    ok: bool
    payload: Any
    seconds: float
    worker: int
    error_type: str = ""
    message: str = ""
    traceback_text: str = ""


#: Worker-process handle to the announce queue (set by ``_worker_init``;
#: ``None`` in the parent and in inline execution).
_WORKER_ANNOUNCE = None


def _worker_init(announce: Any) -> None:
    """Pool initializer: stash the announce queue in the worker."""
    global _WORKER_ANNOUNCE
    _WORKER_ANNOUNCE = announce


def _run_attempt(task: Tuple[Callable[..., Any], Any, int]) -> _Attempt:
    """Worker entry point: announce ownership, run, capture any error."""
    fn, trial, attempt = task
    pid = os.getpid()
    announce = _WORKER_ANNOUNCE
    if announce is not None:
        announce.put((pid, trial.index))
    start = time.perf_counter()
    try:
        payload = call_trial(fn, trial, attempt)
    except Exception as exc:
        return _Attempt(
            index=trial.index,
            ok=False,
            payload=None,
            seconds=time.perf_counter() - start,
            worker=pid,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback_text=traceback.format_exc(),
        )
    return _Attempt(
        index=trial.index,
        ok=True,
        payload=payload,
        seconds=time.perf_counter() - start,
        worker=pid,
    )


def _format_exception(exc: BaseException) -> str:
    return "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))


def _make_failure(
    trial: Any,
    kind: str,
    error_type: str,
    message: str,
    traceback_text: str,
    worker: Optional[int],
    attempts: int,
) -> TrialFailure:
    return TrialFailure(
        experiment_id=trial.experiment_id,
        index=trial.index,
        seed=trial.seed,
        params=trial.params,
        kind=kind,
        error_type=error_type,
        message=message,
        traceback_text=traceback_text,
        worker=worker,
        attempts=attempts,
    )


_ExecResult = Tuple[
    Dict[int, _Attempt], Dict[int, TrialFailure], Dict[int, BaseException]
]


def _run_serial(
    fn: Callable[..., Any], batch: Sequence[Any], policy: FailurePolicy
) -> _ExecResult:
    """Inline execution with retries; timeouts are not preemptible here."""
    successes: Dict[int, _Attempt] = {}
    failures: Dict[int, TrialFailure] = {}
    causes: Dict[int, BaseException] = {}
    pid = os.getpid()
    for trial in sorted(batch, key=lambda t: t.index):
        if policy.over_budget(len(failures)):
            break
        last_exc: Optional[BaseException] = None
        for attempt in range(policy.attempts_per_trial):
            start = time.perf_counter()
            try:
                payload = call_trial(fn, trial, attempt)
            except Exception as exc:
                last_exc = exc
                continue
            successes[trial.index] = _Attempt(
                index=trial.index,
                ok=True,
                payload=payload,
                seconds=time.perf_counter() - start,
                worker=pid,
            )
            break
        else:
            assert last_exc is not None
            failures[trial.index] = _make_failure(
                trial,
                kind="error",
                error_type=type(last_exc).__name__,
                message=str(last_exc),
                traceback_text=_format_exception(last_exc),
                worker=pid,
                attempts=policy.attempts_per_trial,
            )
            causes[trial.index] = last_exc
    return successes, failures, causes


# ----------------------------------------------------------------------
# Pool execution with retries, timeouts, and worker-death recovery
# ----------------------------------------------------------------------
@dataclass
class _InFlight:
    """Bookkeeping for one dispatched-but-unfinished attempt."""

    trial: Any
    attempt: int
    result: Any  # multiprocessing.pool.AsyncResult
    deadline: Optional[float] = None
    started: bool = False


class _PoolExecutor:
    """Runs one batch over a worker pool with fault recovery.

    At most ``workers`` attempts are in flight at once, so every
    dispatched task starts (nearly) immediately and dispatch-time
    deadlines are meaningful; the deadline is re-anchored to the actual
    start when the worker's announcement arrives.  A hung attempt
    (deadline exceeded) or a dead worker poisons only its own trial's
    attempt count: the pool is torn down, respawned, and every *other*
    unfinished trial is re-dispatched without being charged an attempt.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        batch: Sequence[Any],
        jobs: int,
        policy: FailurePolicy,
    ) -> None:
        self._fn = fn
        self._order = sorted(batch, key=lambda t: t.index)
        self._workers = max(1, min(jobs, len(self._order)))
        self._policy = policy
        self._pending: Deque[Any] = deque(self._order)
        self._inflight: Dict[int, _InFlight] = {}
        self._failed_attempts: Dict[int, int] = {t.index: 0 for t in self._order}
        self._owner: Dict[int, int] = {}  # worker pid -> trial index
        self._successes: Dict[int, _Attempt] = {}
        self._failures: Dict[int, TrialFailure] = {}
        self._causes: Dict[int, BaseException] = {}
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._procs: List[Any] = []
        self._announce: Any = None

    # -- main loop -----------------------------------------------------
    def run(self) -> _ExecResult:
        try:
            while (self._pending or self._inflight) and not self._policy.over_budget(
                len(self._failures)
            ):
                self._ensure_pool()
                self._dispatch()
                self._drain_announcements()
                progressed = self._collect_ready()
                progressed = self._reap_timeouts() or progressed
                progressed = self._reap_dead_workers() or progressed
                if not progressed and (self._pending or self._inflight):
                    time.sleep(_POLL_INTERVAL)
        finally:
            self._teardown_pool()
        return self._successes, self._failures, self._causes

    # -- pool lifecycle ------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        self._announce = multiprocessing.SimpleQueue()
        self._pool = multiprocessing.Pool(
            processes=self._workers,
            initializer=_worker_init,
            initargs=(self._announce,),
        )
        self._procs = list(getattr(self._pool, "_pool", []))
        self._owner = {}

    def _teardown_pool(self) -> None:
        pool, self._pool = self._pool, None
        announce, self._announce = self._announce, None
        self._procs = []
        self._owner = {}
        if pool is not None:
            pool.terminate()
            pool.join()
        if announce is not None:
            try:
                while not announce.empty():
                    announce.get()
                announce.close()
            except (OSError, EOFError):  # pragma: no cover - teardown best effort
                pass

    # -- scheduling ----------------------------------------------------
    def _dispatch(self) -> None:
        assert self._pool is not None
        while self._pending and len(self._inflight) < self._workers:
            trial = self._pending.popleft()
            attempt = self._failed_attempts[trial.index]
            result = self._pool.apply_async(
                _run_attempt, ((self._fn, trial, attempt),)
            )
            deadline = None
            if self._policy.trial_timeout is not None:
                deadline = (
                    time.perf_counter() + self._policy.trial_timeout + _DISPATCH_SLACK
                )
            self._inflight[trial.index] = _InFlight(trial, attempt, result, deadline)

    def _requeue_unfinished(self, flights: Sequence[_InFlight]) -> None:
        """Re-dispatch innocent casualties of a pool restart, uncharged."""
        for flight in sorted(flights, key=lambda f: f.trial.index, reverse=True):
            self._pending.appendleft(flight.trial)

    # -- progress ------------------------------------------------------
    def _drain_announcements(self) -> None:
        announce = self._announce
        if announce is None:
            return
        try:
            while not announce.empty():
                pid, index = announce.get()
                self._owner[pid] = index
                flight = self._inflight.get(index)
                if flight is not None and not flight.started:
                    flight.started = True
                    if self._policy.trial_timeout is not None:
                        flight.deadline = (
                            time.perf_counter() + self._policy.trial_timeout
                        )
        except (OSError, EOFError):  # pragma: no cover - queue torn down mid-read
            pass

    def _collect_ready(self) -> bool:
        progressed = False
        for index, flight in list(self._inflight.items()):
            if not flight.result.ready():
                continue
            progressed = True
            del self._inflight[index]
            try:
                outcome = flight.result.get(timeout=0)
            except Exception as exc:
                # The attempt ran but its outcome could not cross the
                # process boundary (e.g. an unpicklable payload raised
                # MaybeEncodingError in the pool's result handler).
                self._attempt_failed(
                    flight,
                    kind="payload",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    traceback_text="",
                    worker=self._pid_running(index),
                )
                continue
            if outcome.ok:
                self._successes[index] = outcome
            else:
                self._attempt_failed(
                    flight,
                    kind="error",
                    error_type=outcome.error_type,
                    message=outcome.message,
                    traceback_text=outcome.traceback_text,
                    worker=outcome.worker,
                )
        return progressed

    def _reap_timeouts(self) -> bool:
        if self._policy.trial_timeout is None or not self._inflight:
            return False
        now = time.perf_counter()
        expired = [
            flight
            for flight in self._inflight.values()
            if flight.deadline is not None and now > flight.deadline
        ]
        if not expired:
            return False
        expired_indices = {flight.trial.index for flight in expired}
        survivors = [
            flight
            for index, flight in self._inflight.items()
            if index not in expired_indices
        ]
        self._inflight.clear()
        for flight in expired:
            self._attempt_failed(
                flight,
                kind="timeout",
                error_type="TimeoutError",
                message=(
                    f"trial exceeded trial_timeout={self._policy.trial_timeout:g}s"
                ),
                traceback_text="",
                worker=self._pid_running(flight.trial.index),
            )
        self._requeue_unfinished(survivors)
        # The hung worker still occupies a slot; reclaim it by
        # respawning the pool (the next loop iteration recreates it).
        self._restart_pool()
        return True

    def _reap_dead_workers(self) -> bool:
        dead = [proc for proc in self._procs if not proc.is_alive()]
        if not dead:
            return False
        victims = set()
        for proc in dead:
            index = self._owner.get(proc.pid)
            if index is not None and index in self._inflight:
                victims.add(index)
        if not victims and self._inflight:
            # A worker died before announcing its trial; the victim is
            # unknowable, so conservatively charge every in-flight trial
            # one attempt (keeps crash loops bounded by the retry budget).
            victims = set(self._inflight)
        exitcodes = sorted({proc.exitcode for proc in dead if proc.exitcode})
        survivors = [
            flight
            for index, flight in self._inflight.items()
            if index not in victims
        ]
        victim_flights = [self._inflight[index] for index in sorted(victims)]
        self._inflight.clear()
        for flight in victim_flights:
            self._attempt_failed(
                flight,
                kind="worker-death",
                error_type="WorkerDeath",
                message=(
                    "worker process died mid-trial"
                    + (f" (exitcode(s) {exitcodes})" if exitcodes else "")
                ),
                traceback_text="",
                worker=self._pid_running(flight.trial.index),
            )
        self._requeue_unfinished(survivors)
        self._restart_pool()
        return True

    def _restart_pool(self) -> None:
        self._teardown_pool()

    # -- bookkeeping ---------------------------------------------------
    def _pid_running(self, index: int) -> Optional[int]:
        for pid, owned in self._owner.items():
            if owned == index:
                return pid
        return None

    def _attempt_failed(
        self,
        flight: _InFlight,
        kind: str,
        error_type: str,
        message: str,
        traceback_text: str,
        worker: Optional[int],
    ) -> None:
        trial = flight.trial
        self._failed_attempts[trial.index] += 1
        if self._failed_attempts[trial.index] <= self._policy.retries:
            self._pending.append(trial)
            return
        failure = _make_failure(
            trial,
            kind=kind,
            error_type=error_type,
            message=message,
            traceback_text=traceback_text,
            worker=worker,
            attempts=self._failed_attempts[trial.index],
        )
        self._failures[trial.index] = failure
        if traceback_text:
            self._causes[trial.index] = WorkerTraceback(traceback_text)


def execute_batch(
    fn: Callable[..., Any],
    batch: Sequence[Any],
    jobs: int,
    policy: FailurePolicy,
) -> _ExecResult:
    """Run a batch under a policy; returns (successes, failures, causes).

    Serial execution handles ``jobs == 1`` and — unless a timeout needs
    process isolation to be enforceable — single-trial batches.  The
    pool path adds timeout and worker-death recovery on top of the
    shared retry semantics.
    """
    use_pool = jobs > 1 and (len(batch) > 1 or policy.trial_timeout is not None)
    if use_pool:
        return _PoolExecutor(fn, batch, jobs, policy).run()
    return _run_serial(fn, batch, policy)


# ----------------------------------------------------------------------
# Deterministic fault injection
# ----------------------------------------------------------------------
class InjectedFault(RuntimeError):
    """Raised (or simulated) by the fault-injection harness."""


class _CorruptPayload:
    """A payload that refuses to pickle — the corrupt-payload mode.

    Crossing the pool boundary raises in the worker's result encoder,
    surfacing as a ``"payload"``-kind attempt failure in the parent.
    Inline execution has no pickle boundary, so corruption is only
    observable with ``jobs > 1``.
    """

    def __init__(self, payload: Any) -> None:
        self.payload = payload

    def __reduce__(self) -> Any:
        raise TypeError("injected corrupt payload refuses to pickle")


@dataclass(frozen=True)
class FaultPlan:
    """Which trials fault, how, and for how many attempts.

    Modes (all keyed off the trial *index*, so a plan is deterministic
    by construction):

    - ``error``: the trial raises :class:`InjectedFault`;
    - ``crash``: the executing worker process dies hard
      (``os._exit``); inline execution raises instead of killing the
      parent process;
    - ``hang``: the trial sleeps ``hang_seconds`` before computing its
      real payload — under a shorter ``trial_timeout`` this presents as
      a hung worker, without one it is merely slow;
    - ``corrupt``: the trial computes its real payload but wraps it in
      an unpicklable envelope, so it cannot cross the pool boundary.

    Every mode recovers after ``recover_after`` faulted attempts: the
    retried trial runs clean with the same seed, which is what lets the
    fault-smoke suite assert byte-identical recovery.
    """

    error: Tuple[int, ...] = ()
    crash: Tuple[int, ...] = ()
    hang: Tuple[int, ...] = ()
    corrupt: Tuple[int, ...] = ()
    recover_after: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.recover_after < 0:
            raise ConfigurationError(
                "recover_after must be >= 0", recover_after=self.recover_after
            )
        if self.hang_seconds <= 0:
            raise ConfigurationError(
                "hang_seconds must be > 0", hang_seconds=self.hang_seconds
            )

    def faulty_indices(self) -> Tuple[int, ...]:
        return tuple(
            sorted(set(self.error) | set(self.crash) | set(self.hang) | set(self.corrupt))
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        count: int,
        fraction: float = 0.3,
        modes: Sequence[str] = ("error", "crash", "hang", "corrupt"),
        recover_after: int = 1,
        hang_seconds: float = 30.0,
    ) -> "FaultPlan":
        """Derive a plan faulting ``<= fraction`` of ``count`` trials.

        The victim set and mode assignment come from a
        :func:`~repro.rng.derive_seed`-seeded generator, so the same
        ``(seed, count, fraction, modes)`` always yields the same plan
        on every platform.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must be in [0, 1]", fraction=fraction)
        unknown = [m for m in modes if m not in ("error", "crash", "hang", "corrupt")]
        if unknown:
            raise ConfigurationError("unknown fault modes", modes=unknown)
        rng = random.Random(derive_seed(seed, "fault-plan"))
        victims = sorted(rng.sample(range(count), int(count * fraction)))
        buckets: Dict[str, List[int]] = {m: [] for m in modes}
        for position, index in enumerate(victims):
            buckets[modes[position % len(modes)]].append(index)
        return cls(
            error=tuple(buckets.get("error", ())),
            crash=tuple(buckets.get("crash", ())),
            hang=tuple(buckets.get("hang", ())),
            corrupt=tuple(buckets.get("corrupt", ())),
            recover_after=recover_after,
            hang_seconds=hang_seconds,
        )


class FaultInjector:
    """Wraps a trial function with a :class:`FaultPlan` (picklable)."""

    _accepts_attempt = True

    def __init__(self, fn: Callable[..., Any], plan: FaultPlan) -> None:
        self._fn = fn
        self._plan = plan

    def __call__(self, trial: Any, attempt: int = 0) -> Any:
        plan = self._plan
        faulting = attempt < plan.recover_after
        if faulting and trial.index in plan.crash:
            if multiprocessing.current_process().daemon:
                os._exit(CRASH_EXIT_CODE)
            raise InjectedFault(
                f"injected crash (trial {trial.index}, attempt {attempt}; "
                "raised instead of killing the non-worker process)"
            )
        if faulting and trial.index in plan.hang:
            time.sleep(plan.hang_seconds)
        if faulting and trial.index in plan.error:
            raise InjectedFault(
                f"injected error (trial {trial.index}, attempt {attempt})"
            )
        payload = call_trial(self._fn, trial, attempt)
        if faulting and trial.index in plan.corrupt:
            return _CorruptPayload(payload)
        return payload


def inject(fn: Callable[..., Any], plan: FaultPlan) -> FaultInjector:
    """Wrap ``fn`` so the plan's trials fault deterministically."""
    return FaultInjector(fn, plan)
