"""Deterministic parallel execution of independent simulation trials.

A *trial* is one self-contained unit of stochastic work: a seeded
simulation or generator run plus its reduction to a compact, picklable
payload.  The :class:`TrialEngine` executes a batch of trials either
inline (``jobs=1``) or across a ``multiprocessing`` pool (``jobs>1``)
and always returns payloads in trial-index order, so downstream code is
oblivious to scheduling.

Determinism rests on two rules:

1. every trial owns its seed — either derived from
   ``(root_seed, experiment_id, trial_index)`` via :func:`trial_seed`
   (new Monte-Carlo sweeps) or passed explicitly (experiments whose
   published outputs pin a historical seed layout);
2. trial functions must build *all* randomness from ``trial.seed``
   (through :class:`~repro.rng.RngStreams`) and must not touch shared
   mutable state.  Under those rules, worker count, submission order,
   and OS scheduling cannot perturb results — the property pinned by
   ``tests/parallel/test_determinism.py``.

Failure semantics live in :mod:`repro.parallel.faults`: the engine
takes a :class:`~repro.parallel.faults.FailurePolicy` and delegates
execution to its fault-tolerant executors, so one raising trial no
longer destroys the whole batch — it is retried (same seed, so a
retried success is bit-identical), and final failures surface as
structured :class:`~repro.parallel.faults.TrialFailure` records or a
chained :class:`~repro.parallel.faults.TrialExecutionError` naming the
reproducing ``(experiment_id, index, seed)``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..rng import derive_seed
from .faults import (
    BatchResult,
    ExcessiveFailuresError,
    FailurePolicy,
    TrialExecutionError,
    execute_batch,
)
from .metrics import METRICS, TrialMetricsCollector, TrialRecord

__all__ = [
    "Trial",
    "TrialEngine",
    "make_trials",
    "resolve_jobs",
    "trial_seed",
]


def trial_seed(root_seed: int, experiment_id: str, trial_index: int) -> int:
    """Derive the seed for one trial of one experiment.

    The derivation goes through :func:`repro.rng.derive_seed`, so child
    seeds are statistically independent across trial indices and across
    experiments, and stable across platforms and Python versions.
    """
    if not experiment_id:
        raise ConfigurationError("experiment_id must be non-empty")
    if trial_index < 0:
        raise ConfigurationError(
            "trial_index must be non-negative", index=trial_index
        )
    return derive_seed(root_seed, f"{experiment_id}:trial:{trial_index}")


def resolve_jobs(jobs: Any) -> int:
    """Validate a worker count (``--jobs``); returns it as a plain int."""
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ConfigurationError("jobs must be an integer", jobs=jobs)
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1", jobs=jobs)
    return jobs


@dataclass(frozen=True)
class Trial:
    """One unit of seeded work.

    Attributes:
        experiment_id: Owning experiment, also the metrics label.
        index: Position within the experiment's trial sweep; results
            are always returned in ascending index order.
        seed: Root seed for *all* randomness inside the trial.
        params: Extra picklable parameters as a tuple of ``(name,
            value)`` pairs (a tuple keeps the dataclass hashable).
    """

    experiment_id: str
    index: int
    seed: int
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def param(self, name: str, default: Any = None) -> Any:
        return self.param_dict.get(name, default)


def make_trials(
    experiment_id: str,
    root_seed: int,
    count: int,
    params: Optional[Sequence[Dict[str, Any]]] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[Trial]:
    """Build ``count`` trials with derived (or explicitly given) seeds.

    ``params`` optionally supplies one parameter dict per trial;
    ``seeds`` overrides the default :func:`trial_seed` derivation for
    experiments that must preserve a historical seed layout.
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1", count=count)
    if params is not None and len(params) != count:
        raise ConfigurationError(
            "need one params dict per trial", params=len(params), count=count
        )
    if seeds is not None and len(seeds) != count:
        raise ConfigurationError(
            "need one seed per trial", seeds=len(seeds), count=count
        )
    trials = []
    for index in range(count):
        seed = seeds[index] if seeds is not None else trial_seed(
            root_seed, experiment_id, index
        )
        param_items = tuple(sorted((params[index] or {}).items())) if params else ()
        trials.append(Trial(experiment_id, index, seed, param_items))
    return trials


class TrialEngine:
    """Executes batches of independent trials serially or in a pool.

    Parameters:
        jobs: Worker processes; ``1`` executes inline in this process.
        collector: Destination for per-trial timing and failure records
            (defaults to the process-wide
            :data:`~repro.parallel.metrics.METRICS`).
        policy: Failure semantics
            (:class:`~repro.parallel.faults.FailurePolicy`); the
            default is strict — no retries, no timeout, raise on the
            first final failure, matching the engine's historical
            behaviour minus the lost-batch bug.
    """

    def __init__(
        self,
        jobs: int = 1,
        collector: Optional[TrialMetricsCollector] = None,
        policy: Optional[FailurePolicy] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.collector = METRICS if collector is None else collector
        self.policy = FailurePolicy.strict() if policy is None else policy

    # ------------------------------------------------------------------
    def run(self, fn: Callable[[Trial], Any], trials: Iterable[Trial]) -> BatchResult:
        """Run every trial under the engine's policy; partial results OK.

        ``fn`` must be a module-level callable (picklable by reference)
        and every payload must be picklable.  Payload order — and,
        given rule-abiding trial functions, the payloads themselves —
        do not depend on ``jobs``, submission order, or how many
        retries a trial needed (retries reuse the trial's seed).

        Raises:
            TrialExecutionError: under a ``"raise"`` policy, chained
                from the failing trial's (possibly remote) traceback
                and naming its ``(experiment_id, index, seed)``.
            ExcessiveFailuresError: under a ``"skip"`` policy whose
                ``max_failures`` budget the batch exceeded; names every
                failed trial.
        """
        batch = list(trials)
        indices = [t.index for t in batch]
        if len(set(indices)) != len(indices):
            raise ConfigurationError("trial indices must be unique", indices=indices)
        if not batch:
            return BatchResult((), (), ())
        successes, failures, causes = execute_batch(
            fn, batch, self.jobs, self.policy
        )
        ordered = sorted(batch, key=lambda trial: trial.index)
        for trial in ordered:
            attempt = successes.get(trial.index)
            if attempt is not None:
                self.collector.record(
                    TrialRecord(
                        trial.experiment_id, trial.index, attempt.seconds, attempt.worker
                    )
                )
        failure_list = tuple(failures[index] for index in sorted(failures))
        for failure in failure_list:
            self.collector.record_failure(failure)
        if failure_list:
            if self.policy.mode == "raise":
                first = failure_list[0]
                error = TrialExecutionError(first)
                cause = causes.get(first.index)
                if cause is not None:
                    raise error from cause
                raise error
            if self.policy.max_failures is not None and len(failure_list) > (
                self.policy.max_failures
            ):
                raise ExcessiveFailuresError(failure_list, self.policy.max_failures)
        payloads = tuple(
            successes[trial.index].payload if trial.index in successes else None
            for trial in ordered
        )
        return BatchResult(tuple(ordered), payloads, failure_list)

    def map(self, fn: Callable[[Trial], Any], trials: Iterable[Trial]) -> List[Any]:
        """Run every trial; payloads come back in ascending index order.

        Thin wrapper over :meth:`run` preserving the historical list
        return.  Under a ``"skip"`` policy a failed trial's slot holds
        ``None`` — callers that need to distinguish a legitimate
        ``None`` payload from a failure should use :meth:`run` and
        consult :attr:`~repro.parallel.faults.BatchResult.failures`.
        """
        return list(self.run(fn, trials).payloads)

    # ------------------------------------------------------------------
    def first_match(
        self,
        fn: Callable[[Trial], Any],
        trials: Iterable[Trial],
        predicate: Callable[[Any], bool],
        fallback: Optional[Callable[[Any], bool]] = None,
    ) -> Optional[Tuple[Trial, Any]]:
        """Lowest-index trial whose payload satisfies ``predicate``.

        If no trial matches, returns the lowest-index trial satisfying
        ``fallback`` (when given), else ``None``.  Serial engines stop
        executing at the first match (the pre-parallel early-exit
        behaviour); parallel engines evaluate in waves of ``jobs``
        trials.  Both select the same trial: waves are scanned in index
        order, so the first wave containing a match always yields the
        global minimum matching index.  Under a ``"skip"`` policy,
        failed trials simply cannot match (or fall back) — selection
        still favours the lowest surviving index.
        """
        ordered = sorted(trials, key=lambda trial: trial.index)
        fallback_hit: Optional[Tuple[Trial, Any]] = None
        wave_size = self.jobs if self.jobs > 1 else 1
        for start in range(0, len(ordered), wave_size):
            wave = ordered[start : start + wave_size]
            batch = self.run(fn, wave)
            failed = batch.failed_indices
            for trial, payload in zip(batch.trials, batch.payloads):
                if trial.index in failed:
                    continue
                if predicate(payload):
                    return trial, payload
                if (
                    fallback is not None
                    and fallback_hit is None
                    and fallback(payload)
                ):
                    fallback_hit = (trial, payload)
        return fallback_hit
