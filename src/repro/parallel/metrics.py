"""Per-trial execution metrics.

The engine reports one :class:`TrialRecord` per *executed* trial into a
:class:`TrialMetricsCollector` (the module-level :data:`METRICS` by
default).  Two consumers rely on this:

- the CLI runner and the benchmark harness print per-experiment trial
  counts, worker fan-out, and wall-clock totals, making the parallel
  speedup observable;
- the cache tests assert that a warm cache produces *zero* new records
  across a full sweep — the "no trial re-executions" guarantee.

Records live in the parent process only: parallel workers return their
timings to the parent, which files them, so collectors never need
cross-process synchronization.

The collector also files one
:class:`~repro.parallel.faults.TrialFailure` per *final* (post-retry)
trial failure, so sweep summaries can report failure counts next to
execution counts — partial results are only trustworthy when the
failures that produced them are visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> metrics)
    from .faults import TrialFailure

__all__ = [
    "TrialRecord",
    "TrialMetricsCollector",
    "PhaseTimingCollector",
    "METRICS",
]


@dataclass(frozen=True)
class TrialRecord:
    """Timing for one executed trial.

    Attributes:
        experiment_id: Owning experiment ("figure6", ...).
        trial_index: The trial's index within its experiment.
        seconds: Wall-clock execution time inside the worker.
        worker: PID of the process that executed the trial.
    """

    experiment_id: str
    trial_index: int
    seconds: float
    worker: int


class TrialMetricsCollector:
    """Accumulates :class:`TrialRecord` entries from trial engines."""

    def __init__(self) -> None:
        self._records: List[TrialRecord] = []
        self._failures: List["TrialFailure"] = []

    def record(self, record: TrialRecord) -> None:
        self._records.append(record)

    def record_failure(self, failure: "TrialFailure") -> None:
        """File one final (post-retry) trial failure."""
        self._failures.append(failure)

    @property
    def records(self) -> Tuple[TrialRecord, ...]:
        return tuple(self._records)

    @property
    def failures(self) -> Tuple["TrialFailure", ...]:
        return tuple(self._failures)

    def reset(self) -> None:
        self._records.clear()
        self._failures.clear()

    def failed(self, experiment_id: Optional[str] = None) -> int:
        """Number of failed trials (optionally for one experiment)."""
        if experiment_id is None:
            return len(self._failures)
        return sum(1 for f in self._failures if f.experiment_id == experiment_id)

    def executed(self, experiment_id: Optional[str] = None) -> int:
        """Number of executed trials (optionally for one experiment)."""
        if experiment_id is None:
            return len(self._records)
        return sum(1 for r in self._records if r.experiment_id == experiment_id)

    def summary(self, experiment_id: Optional[str] = None) -> Dict[str, float]:
        """Aggregate view: trial count, distinct workers, time totals."""
        records = [
            r
            for r in self._records
            if experiment_id is None or r.experiment_id == experiment_id
        ]
        failures = self.failed(experiment_id)
        if not records:
            return {
                "trials": 0,
                "workers": 0,
                "total_seconds": 0.0,
                "max_seconds": 0.0,
                "failures": failures,
            }
        return {
            "trials": len(records),
            "workers": len({r.worker for r in records}),
            "total_seconds": sum(r.seconds for r in records),
            "max_seconds": max(r.seconds for r in records),
            "failures": failures,
        }

    def format_summary(self, experiment_id: Optional[str] = None) -> str:
        """One-line human-readable summary for CLI output."""
        s = self.summary(experiment_id)
        line = (
            f"{s['trials']} trial(s) on {s['workers']} worker(s), "
            f"{s['total_seconds']:.2f}s trial time"
        )
        if s["failures"]:
            line += f", {s['failures']} failure(s)"
        return line


class PhaseTimingCollector:
    """Accumulates per-phase wall-clock time inside a simulation loop.

    The grid engines time each step's three phases (``mine``,
    ``communicate``, ``collect``) when handed a collector, so the
    benchmark harness can attribute wall time to the kernel that spent
    it — the communication kernel dominates, and ``BENCH_netsim.json``
    records the split per engine.  Timing is opt-in: engines skip the
    clock calls entirely when no collector is attached, keeping the
    hot path free of instrumentation overhead.

    Timings are observability output, never simulation input, so the
    wall-clock reads feeding this collector cannot affect determinism.
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Attribute ``seconds`` of wall time to ``phase``."""
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds
        self._calls[phase] = self._calls.get(phase, 0) + 1

    @property
    def phases(self) -> Tuple[str, ...]:
        """Phases seen so far, in first-recorded order."""
        return tuple(self._seconds)

    def seconds(self, phase: str) -> float:
        return self._seconds.get(phase, 0.0)

    def calls(self, phase: str) -> int:
        return self._calls.get(phase, 0)

    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals: seconds, calls, share of the overall time."""
        total = self.total_seconds()
        return {
            phase: {
                "seconds": self._seconds[phase],
                "calls": float(self._calls[phase]),
                "share": (self._seconds[phase] / total) if total else 0.0,
            }
            for phase in self._seconds
        }

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()


#: Default process-wide collector used by :class:`~repro.parallel.trials.TrialEngine`.
METRICS = TrialMetricsCollector()
