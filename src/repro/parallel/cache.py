"""Content-keyed on-disk cache for experiment results.

Entries are JSON files named by a SHA-256 over the *content key*: the
experiment id, the canonicalized config dict, the seed, and a
code-version tag.  Any change to any component produces a different
key, so stale results are never served — they are simply orphaned on
disk.  The cache stores plain JSON payloads (the experiment layer
converts :class:`~repro.experiments.base.ExperimentResult` to/from
dicts), which keeps this module free of upward dependencies.

Robustness rules:

- writes are atomic (temp file + ``os.replace``), so a crashed run
  never leaves a half-written entry under a valid name;
- unreadable, truncated, or schema-mismatched entries count as misses:
  the entry is deleted and the caller recomputes instead of crashing.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from .. import __version__

__all__ = ["CODE_VERSION", "ResultCache", "cache_key"]

#: Tag mixed into every key; bump :data:`repro.__version__` (or override
#: per-cache) when a code change alters experiment outputs.
CODE_VERSION = f"repro-{__version__}"

#: On-disk envelope layout version (distinct from the code tag: this
#: guards the *file format*, the tag guards the *computed content*).
_SCHEMA_VERSION = 1


def _canonical(config: Mapping[str, Any]) -> str:
    """Stable text form of a config dict (sorted keys, no whitespace)."""
    return json.dumps(config, sort_keys=True, separators=(",", ":"), default=repr)


def cache_key(
    experiment_id: str,
    config: Mapping[str, Any],
    seed: int,
    code_version: str = CODE_VERSION,
) -> str:
    """Content key for one (experiment, config, seed, code) quadruple."""
    payload = "\x1f".join(
        [experiment_id, _canonical(config), str(seed), code_version]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem cache of experiment payloads, keyed by content.

    Parameters:
        directory: Cache root; created on demand.
        code_version: Overrides :data:`CODE_VERSION` (tests use this to
            exercise invalidation without touching the package version).

    Attributes:
        hits / misses / stores / corrupt_entries: Counters for
            observability; the CLI prints them after a sweep.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        code_version: str = CODE_VERSION,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_entries = 0

    # ------------------------------------------------------------------
    def key(self, experiment_id: str, config: Mapping[str, Any], seed: int) -> str:
        return cache_key(experiment_id, config, seed, self.code_version)

    def entry_path(
        self, experiment_id: str, config: Mapping[str, Any], seed: int
    ) -> Path:
        return self.directory / f"{self.key(experiment_id, config, seed)}.json"

    # ------------------------------------------------------------------
    def get(
        self, experiment_id: str, config: Mapping[str, Any], seed: int
    ) -> Optional[Dict[str, Any]]:
        """Stored payload dict, or ``None`` on miss/corruption.

        A corrupt entry (unparsable JSON, wrong envelope schema, or a
        key mismatch from a renamed file) is deleted so the caller's
        recompute will overwrite it with a good copy.
        """
        path = self.entry_path(experiment_id, config, seed)
        if not path.exists():
            self.misses += 1
            return None
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != _SCHEMA_VERSION
                or envelope.get("key") != self.key(experiment_id, config, seed)
                or not isinstance(envelope.get("payload"), dict)
            ):
                raise ValueError("bad cache envelope")
        except (ValueError, OSError):
            self.corrupt_entries += 1
            self.misses += 1
            self.discard(experiment_id, config, seed)
            return None
        self.hits += 1
        return envelope["payload"]

    def put(
        self,
        experiment_id: str,
        config: Mapping[str, Any],
        seed: int,
        payload: Mapping[str, Any],
    ) -> Path:
        """Atomically store ``payload`` for the given content key."""
        path = self.entry_path(experiment_id, config, seed)
        envelope = {
            "schema": _SCHEMA_VERSION,
            "key": self.key(experiment_id, config, seed),
            "experiment_id": experiment_id,
            "seed": seed,
            "config": dict(config),
            "code_version": self.code_version,
            "payload": dict(payload),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(envelope, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        self.stores += 1
        return path

    def discard(
        self, experiment_id: str, config: Mapping[str, Any], seed: int
    ) -> bool:
        """Remove one entry (returns whether a file was deleted)."""
        path = self.entry_path(experiment_id, config, seed)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_entries": self.corrupt_entries,
        }

    def format_stats(self) -> str:
        s = self.stats()
        return (
            f"cache: {s['hits']} hit(s), {s['misses']} miss(es), "
            f"{s['stores']} store(s)"
        )
