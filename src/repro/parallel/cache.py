"""Content-keyed on-disk cache for experiment results.

Entries are JSON files named by a SHA-256 over the *content key*: the
experiment id, the canonicalized config dict, the seed, and a
code-version tag.  Any change to any component produces a different
key, so stale results are never served — they are simply orphaned on
disk.  The cache stores plain JSON payloads (the experiment layer
converts :class:`~repro.experiments.base.ExperimentResult` to/from
dicts), which keeps this module free of upward dependencies.

Robustness rules:

- writes are atomic (per-process unique temp file via
  ``tempfile.mkstemp`` in the cache directory, then ``os.replace``),
  so a crashed run never leaves a half-written entry under a valid
  name and *concurrent writers of the same key can never interleave*:
  each writer owns its own temp file and the last rename wins whole;
- unreadable, truncated, or schema-mismatched entries count as misses:
  the entry is deleted and the caller recomputes instead of crashing;
- ``*.tmp`` files orphaned by crashed runs are swept at cache startup
  (only when older than ``tmp_ttl_seconds``, so a live concurrent
  writer's in-flight temp file is never yanked out from under its
  rename) and unconditionally by :meth:`ResultCache.clear`; the sweep
  count is surfaced through :meth:`ResultCache.stats`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from .. import __version__

__all__ = [
    "CODE_VERSION",
    "FINGERPRINT_MODULES",
    "ResultCache",
    "cache_key",
    "code_fingerprint",
]

#: Every module/package whose source participates in the code-version
#: fingerprint: the transitive import closure of the registered entry
#: workers, as certified by ``repro-audit`` (RPL204 fails the audit if
#: a module reachable from a cached worker is missing here).  Naming a
#: package covers its whole subtree plus every ancestor ``__init__``.
FINGERPRINT_MODULES = (
    "repro.analysis",
    "repro.attacks",
    "repro.blockchain",
    "repro.countermeasures",
    "repro.crawler",
    "repro.datagen",
    "repro.errors",
    "repro.experiments",
    "repro.netsim",
    "repro.parallel",
    "repro.reporting",
    "repro.rng",
    "repro.scenarios",
    "repro.sweeps",
    "repro.topology",
    "repro.types",
)


def code_fingerprint(modules: "tuple" = FINGERPRINT_MODULES) -> str:
    """SHA-256 digest over the source of every fingerprinted module.

    Hashes (relative path, content) pairs in sorted path order: byte-
    stable across machines and runs for identical sources, different
    for any edit to any covered file.  A declared package contributes
    every ``*.py`` under it; ancestor ``__init__.py`` files (which run
    at import time) are included automatically.  Names that resolve to
    nothing contribute nothing — the audit, not this function, is what
    certifies the declaration list is complete.
    """
    src_root = Path(__file__).resolve().parent.parent.parent
    files = set()
    for name in modules:
        parts = name.split(".")
        for cut in range(1, len(parts)):
            init = src_root.joinpath(*parts[:cut]) / "__init__.py"
            if init.is_file():
                files.add(init)
        as_dir = src_root.joinpath(*parts)
        as_module = as_dir.with_suffix(".py")
        if as_dir.is_dir():
            files.update(as_dir.rglob("*.py"))
        elif as_module.is_file():
            files.add(as_module)
    digest = hashlib.sha256()
    for file_path in sorted(files):
        digest.update(file_path.relative_to(src_root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(file_path.read_bytes())  # repro-lint: disable=filesystem fingerprint hashes the tracked sources it certifies
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


#: Tag mixed into every key: the package version plus a source
#: fingerprint over :data:`FINGERPRINT_MODULES`, so editing any module
#: a cached worker can execute changes every key — stale entries are
#: orphaned instead of served.  Override per-cache to pin behavior.
CODE_VERSION = f"repro-{__version__}+{code_fingerprint()}"

#: On-disk envelope layout version (distinct from the code tag: this
#: guards the *file format*, the tag guards the *computed content*).
_SCHEMA_VERSION = 1


def _canonical(config: Mapping[str, Any]) -> str:
    """Stable text form of a config dict (sorted keys, no whitespace)."""
    return json.dumps(config, sort_keys=True, separators=(",", ":"), default=repr)


def cache_key(
    experiment_id: str,
    config: Mapping[str, Any],
    seed: int,
    code_version: str = CODE_VERSION,
) -> str:
    """Content key for one (experiment, config, seed, code) quadruple."""
    payload = "\x1f".join(
        [experiment_id, _canonical(config), str(seed), code_version]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem cache of experiment payloads, keyed by content.

    Parameters:
        directory: Cache root; created on demand.
        code_version: Overrides :data:`CODE_VERSION` (tests use this to
            exercise invalidation without touching the package version).
        tmp_ttl_seconds: Minimum age before an orphaned ``*.tmp`` file
            is considered crash debris and swept; younger temp files
            may belong to a live concurrent writer and are left alone.

    Attributes:
        hits / misses / stores / corrupt_entries /
        orphaned_tmp_removed: Counters for observability; the CLI
            prints them after a sweep.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        code_version: str = CODE_VERSION,
        tmp_ttl_seconds: float = 300.0,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version
        self.tmp_ttl_seconds = tmp_ttl_seconds
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_entries = 0
        self.orphaned_tmp_removed = 0
        self.sweep_orphans()

    # ------------------------------------------------------------------
    def key(self, experiment_id: str, config: Mapping[str, Any], seed: int) -> str:
        return cache_key(experiment_id, config, seed, self.code_version)

    def entry_path(
        self, experiment_id: str, config: Mapping[str, Any], seed: int
    ) -> Path:
        return self.directory / f"{self.key(experiment_id, config, seed)}.json"

    # ------------------------------------------------------------------
    def get(
        self, experiment_id: str, config: Mapping[str, Any], seed: int
    ) -> Optional[Dict[str, Any]]:
        """Stored payload dict, or ``None`` on miss/corruption.

        A corrupt entry (unparsable JSON, wrong envelope schema, or a
        key mismatch from a renamed file) is deleted so the caller's
        recompute will overwrite it with a good copy.
        """
        path = self.entry_path(experiment_id, config, seed)
        if not path.exists():
            self.misses += 1
            return None
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != _SCHEMA_VERSION
                or envelope.get("key") != self.key(experiment_id, config, seed)
                or not isinstance(envelope.get("payload"), dict)
            ):
                raise ValueError("bad cache envelope")
        except (ValueError, OSError):
            self.corrupt_entries += 1
            self.misses += 1
            self.discard(experiment_id, config, seed)
            return None
        self.hits += 1
        return envelope["payload"]

    def put(
        self,
        experiment_id: str,
        config: Mapping[str, Any],
        seed: int,
        payload: Mapping[str, Any],
    ) -> Path:
        """Atomically store ``payload`` for the given content key."""
        path = self.entry_path(experiment_id, config, seed)
        envelope = {
            "schema": _SCHEMA_VERSION,
            "key": self.key(experiment_id, config, seed),
            "experiment_id": experiment_id,
            "seed": seed,
            "config": dict(config),
            "code_version": self.code_version,
            "payload": dict(payload),
        }
        # A per-process unique temp name (mkstemp) keeps concurrent
        # writers of the same key from interleaving into one half-written
        # envelope; whichever os.replace lands last wins whole.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=f"{path.stem}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(envelope, sort_keys=True))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def discard(
        self, experiment_id: str, config: Mapping[str, Any], seed: int
    ) -> bool:
        """Remove one entry (returns whether a file was deleted)."""
        path = self.entry_path(experiment_id, config, seed)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Delete every entry (plus any ``*.tmp`` debris); returns the
        number of *entries* removed.  Unlike the startup sweep, an
        explicit clear is a full reset, so temp files are removed
        regardless of age."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        for tmp in self.directory.glob("*.tmp"):
            try:
                tmp.unlink()
                self.orphaned_tmp_removed += 1
            except OSError:
                continue
        return removed

    def sweep_orphans(self) -> int:
        """Remove ``*.tmp`` files orphaned by crashed runs; returns the
        number removed (also accumulated in ``orphaned_tmp_removed``).

        Only temp files older than ``tmp_ttl_seconds`` are swept: a
        younger one may be a live concurrent writer's in-flight file,
        and deleting it would make that writer's ``os.replace`` fail.
        Runs automatically at construction, so every cache open recovers
        the directory from prior crashes.
        """
        removed = 0
        # Wall-clock here only ages crash debris against file mtimes; it
        # never feeds simulation state or cache keys.
        now = time.time()  # repro-lint: disable=RPL103 file-age housekeeping, not simulation input
        for tmp in self.directory.glob("*.tmp"):
            try:
                age = now - tmp.stat().st_mtime
            except OSError:
                continue
            if age < self.tmp_ttl_seconds:
                continue
            try:
                tmp.unlink()
                removed += 1
            except OSError:
                continue
        self.orphaned_tmp_removed += removed
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_entries": self.corrupt_entries,
            "orphaned_tmp_removed": self.orphaned_tmp_removed,
        }

    def format_stats(self) -> str:
        s = self.stats()
        line = (
            f"cache: {s['hits']} hit(s), {s['misses']} miss(es), "
            f"{s['stores']} store(s)"
        )
        if s["orphaned_tmp_removed"]:
            line += f", {s['orphaned_tmp_removed']} orphaned tmp file(s) removed"
        return line
