"""Parallel trial execution and result caching.

The paper's temporal artifacts (Figures 6-8, Tables V-VIII) are
aggregates over independent seeded simulations — exactly the workload
shape that fans out over processes without coordination.  This package
provides the two pieces of infrastructure that let the experiment layer
scale past one core while staying bit-reproducible:

- :mod:`repro.parallel.trials` — a :class:`TrialEngine` that executes
  independent :class:`Trial` units serially or over a
  ``multiprocessing`` pool.  Each trial carries its own seed (derived
  from ``(root_seed, experiment_id, trial_index)`` via
  :func:`repro.rng.derive_seed`), so the results are identical
  regardless of worker count or scheduling order;
- :mod:`repro.parallel.cache` — a content-keyed on-disk
  :class:`ResultCache` that lets re-runs and ``--fast`` CI sweeps skip
  completed work.  Keys hash the experiment id, the config dict, the
  seed, and a code-version tag, so any input change invalidates;
- :mod:`repro.parallel.metrics` — per-trial timing/worker records so
  speedups (and cache-driven *non*-executions) are observable;
- :mod:`repro.parallel.faults` — the fault-tolerance layer: per-trial
  failure capture (:class:`TrialFailure`), bounded deterministic
  retries, per-trial timeouts with hung/dead-worker pool respawn,
  graceful degradation via :class:`FailurePolicy`, and a deterministic
  fault-injection harness (:func:`~repro.parallel.faults.inject`) used
  by the fault-smoke suite.
"""

from .cache import CODE_VERSION, ResultCache, cache_key
from .faults import (
    BatchResult,
    ExcessiveFailuresError,
    FailurePolicy,
    FaultPlan,
    InjectedFault,
    TrialExecutionError,
    TrialFailure,
    inject,
)
from .metrics import METRICS, PhaseTimingCollector, TrialMetricsCollector, TrialRecord
from .trials import Trial, TrialEngine, make_trials, resolve_jobs, trial_seed

__all__ = [
    "BatchResult",
    "CODE_VERSION",
    "ExcessiveFailuresError",
    "FailurePolicy",
    "FaultPlan",
    "InjectedFault",
    "METRICS",
    "PhaseTimingCollector",
    "ResultCache",
    "Trial",
    "TrialEngine",
    "TrialExecutionError",
    "TrialFailure",
    "TrialMetricsCollector",
    "TrialRecord",
    "cache_key",
    "inject",
    "make_trials",
    "resolve_jobs",
    "trial_seed",
]
