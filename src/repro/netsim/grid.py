"""The paper's grid-based temporal-attack simulator (Figure 7).

The original study built this model in R (§V-B, "Simulation and Attack
Validation"); this is a faithful Python reimplementation of every
mechanic the paper describes:

- nodes on a square grid (size 25 shown in the figures, 100 = the full
  10,000-node network), each with the default 8 peers (the Moore
  neighbourhood, wrapping at the edges);
- per-step peer communication with a ~10% failure rate: "each time
  step represents one peer-to-peer communication attempt for each
  node";
- every node maintains a 64-bit MD5 hash-linked chain "as an internal
  error check" — adoption verifies linkage before switching;
- block production is Bernoulli per step with the honest network and
  the attacker splitting the hash rate (default 70/30);
- honest miners extend the chain view of a *random node*, so natural
  forks emerge whenever the network is out of sync, and are resolved
  by the longest-chain rule "within two or three block intervals";
- the attacker seeds its fork at a chosen cell (the paper's node
  [7,7]) and pins that node to the counterfeit chain;
- the span-ratio law ``T_delay = T_block / (R_span * sqrt(N))`` links
  the per-step delay to network-wide synchronization; R_span = 2.0 is
  the paper's synchronization target.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from ..rng import RngStreams
from ..types import BITCOIN_BLOCK_INTERVAL, Seconds

__all__ = [
    "GridConfig",
    "GridSnapshot",
    "GridSimulator",
    "ForkChain",
    "span_ratio_delay",
]


def span_ratio_delay(
    num_nodes: int,
    span_ratio: float = 2.0,
    block_interval: Seconds = BITCOIN_BLOCK_INTERVAL,
) -> Seconds:
    """Maximum per-hop delay that keeps ``num_nodes`` synchronized.

    The paper's non-dimensional law: information must cross the network
    diameter ``R_span`` times per block interval; on a square grid the
    diameter is ~sqrt(N), hence ``T_delay = T_block / (R_span * sqrt(N))``.
    For N = 10,000 and R_span = 2.0 this gives the paper's 3-second
    per-communication interval.
    """
    if num_nodes < 1:
        raise ConfigurationError("num_nodes must be positive", num=num_nodes)
    if span_ratio <= 0:
        raise ConfigurationError("span_ratio must be positive", ratio=span_ratio)
    return block_interval / (span_ratio * math.sqrt(num_nodes))


@dataclass
class ForkChain:
    """One branch of the global block tree, as a hash-linked label chain.

    Fork ``A`` is the honest main chain from genesis; every divergence
    creates a new labelled fork with a ``parent`` and ``branch_height``
    (the last height shared with the parent).
    """

    label: str
    parent: Optional["ForkChain"]
    branch_height: int
    hashes: List[str] = field(default_factory=list)  # heights branch_height+1..
    counterfeit: bool = False

    @property
    def tip_height(self) -> int:
        return self.branch_height + len(self.hashes)

    def tip_hash(self) -> str:
        return self.hash_at(self.tip_height)

    def hash_at(self, height: int) -> str:
        """Hash of this branch's block at ``height`` (follows parents)."""
        if height <= self.branch_height:
            if self.parent is None:
                if height == 0:
                    return "genesis"
                raise SimulationError("height below genesis", height=height)
            return self.parent.hash_at(height)
        index = height - self.branch_height - 1
        if index >= len(self.hashes):
            raise SimulationError(
                "height above tip", height=height, tip=self.tip_height
            )
        return self.hashes[index]

    def extend(self) -> str:
        """Mine one block on this fork; returns the new block hash.

        The new hash links to the previous one with a 64-bit MD5
        digest, matching the paper's internal error check.
        """
        prev = self.tip_hash()
        payload = f"{prev}|{self.label}|{self.tip_height + 1}"
        new_hash = hashlib.md5(payload.encode("utf-8")).hexdigest()[:16]
        self.hashes.append(new_hash)
        return new_hash

    def shares_prefix_with(self, other: "ForkChain", height: int) -> bool:
        """Linkage check: do both branches agree at ``height``?"""
        try:
            return self.hash_at(height) == other.hash_at(height)
        except SimulationError:
            return False


@dataclass(frozen=True)
class GridConfig:
    """Parameters of the grid simulation.

    Attributes:
        size: Grid edge length (25 in the paper's figures; 100 = full
            network scale).
        failure_rate: Per-communication failure probability (~0.1).
        steps_per_block: Communication steps per expected block
            interval.  With the span-ratio law this is
            ``R_span * size`` (diameter crossings per block).
        attacker_share: Attacker's fraction of total hash rate (0.30 in
            Figure 7; 0 disables the attack).
        attacker_cell: Grid cell where the counterfeit fork is seeded
            (the paper's fork B emerges at node [7,7]).
        attack_start_step: Step at which the attacker begins.
        natural_fork_rate: Fraction of honest blocks mined by a
            poorly-synchronized miner on a stale view, creating the
            natural forks the paper observes resolving within 2-3
            block intervals.
        seed: Root seed.
    """

    size: int = 25
    failure_rate: float = 0.10
    steps_per_block: int = 50
    attacker_share: float = 0.30
    attacker_cell: Tuple[int, int] = (7, 7)
    attack_start_step: int = 0
    natural_fork_rate: float = 0.10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ConfigurationError("grid size must be >= 2", size=self.size)
        if not 0.0 <= self.failure_rate < 1.0:
            raise ConfigurationError("failure_rate in [0,1)")
        if self.steps_per_block < 1:
            raise ConfigurationError("steps_per_block must be >= 1")
        if not 0.0 <= self.attacker_share < 1.0:
            raise ConfigurationError("attacker_share in [0,1)")
        if not 0.0 <= self.natural_fork_rate <= 1.0:
            raise ConfigurationError("natural_fork_rate in [0,1]")
        row, col = self.attacker_cell
        if not (0 <= row < self.size and 0 <= col < self.size):
            raise ConfigurationError("attacker_cell outside grid")

    @property
    def num_nodes(self) -> int:
        return self.size * self.size

    @property
    def span_ratio(self) -> float:
        """Implied span ratio of this configuration.

        ``steps_per_block`` steps cross the diameter (≈ size hops)
        ``steps_per_block / size`` times per block interval.
        """
        return self.steps_per_block / self.size


@dataclass(frozen=True)
class GridSnapshot:
    """State of the grid at one step: fork label and height per cell."""

    step: int
    labels: Tuple[Tuple[str, ...], ...]
    heights: Tuple[Tuple[int, ...], ...]

    def fork_fractions(self) -> Dict[str, float]:
        """Fraction of nodes on each fork — Figure 7's colour shares."""
        counts: Dict[str, int] = {}
        for row in self.labels:
            for label in row:
                counts[label] = counts.get(label, 0) + 1
        total = sum(counts.values())
        return {label: count / total for label, count in counts.items()}

    def render(self) -> str:
        """ASCII rendering (one letter per cell) for logs and examples."""
        return "\n".join("".join(row) for row in self.labels)


class GridSimulator:
    """Step-driven grid network with fork propagation and an attacker."""

    #: Labels assigned to successive natural forks (A is the main chain).
    _LABELS = "ACDEFGHIJKLMNOPQRSTUVWXYZ"

    #: Cells at which a freshly-mined honest block surfaces (the mining
    #: pool's own nodes), so the honest chain re-enters a captured grid
    #: from several points at once.
    HONEST_SEED_CELLS = 3

    def __init__(self, config: GridConfig) -> None:
        self.config = config
        self.streams = RngStreams(config.seed)
        self._rng = self.streams.stream("grid")
        size = config.size
        self.main = ForkChain(label="A", parent=None, branch_height=0)
        self.forks: Dict[str, ForkChain] = {"A": self.main}
        self._label_cursor = 1  # next natural-fork label index
        # Per-cell state: fork label and height.
        self.labels: List[List[str]] = [["A"] * size for _ in range(size)]
        self.heights: List[List[int]] = [[0] * size for _ in range(size)]
        self.step_count = 0
        self.attacker_fork: Optional[ForkChain] = None
        self.fork_births: Dict[str, int] = {"A": 0}
        self.fork_deaths: Dict[str, int] = {}
        self._neighbors = self._build_neighbors(size)

    # ------------------------------------------------------------------
    @staticmethod
    def _build_neighbors(size: int) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
        """Moore neighbourhood (8 peers) with toroidal wrapping."""
        neighbors = {}
        for r in range(size):
            for c in range(size):
                cell_neighbors = []
                for dr in (-1, 0, 1):
                    for dc in (-1, 0, 1):
                        if dr == 0 and dc == 0:
                            continue
                        cell_neighbors.append(((r + dr) % size, (c + dc) % size))
                neighbors[(r, c)] = cell_neighbors
        return neighbors

    def fork_of(self, label: str) -> ForkChain:
        try:
            return self.forks[label]
        except KeyError:
            raise SimulationError("unknown fork", label=label) from None

    # ------------------------------------------------------------------
    # One simulation step
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one communication step: mining, then gossip."""
        self.step_count += 1
        self._maybe_mine()
        self._communicate()
        self._collect_dead_forks()

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    def _maybe_mine(self) -> None:
        p_block = 1.0 / self.config.steps_per_block
        attack_live = (
            self.config.attacker_share > 0.0
            and self.step_count >= self.config.attack_start_step
        )
        honest_share = 1.0 - (self.config.attacker_share if attack_live else 0.0)
        if self._rng.random() < p_block * honest_share:
            self._mine_honest()
        if attack_live and self._rng.random() < p_block * self.config.attacker_share:
            self._mine_attacker()

    def _honest_cells(self) -> List[Tuple[int, int]]:
        """Cells currently holding a non-counterfeit chain view."""
        size = self.config.size
        return [
            (r, c)
            for r in range(size)
            for c in range(size)
            if (r, c) != self.config.attacker_cell
            and not self.fork_of(self.labels[r][c]).counterfeit
        ]

    def _best_honest_fork(self) -> ForkChain:
        """The longest non-counterfeit branch in the registry."""
        candidates = [f for f in self.forks.values() if not f.counterfeit]
        return max(candidates, key=lambda f: (f.tip_height, f.label == "A"))

    def _mine_honest(self) -> None:
        """An honest miner finds a block.

        Honest miners never build on the counterfeit branch — they keep
        mining the honest chain even while victim nodes' *views* are
        captured, which is why "the longer chain A overwhelms fork B"
        in the paper's panels despite B's transient leads.  With
        probability ``1 - natural_fork_rate`` the block extends the
        best honest branch; otherwise a poorly-synchronized miner
        builds on a random honest cell's stale view, creating the
        natural forks C, D, ... of Figure 7(c).

        The new tip is deposited at a grid cell (the miner's own node):
        the best-placed holder of that branch, or a random cell if the
        counterfeit fork displaced every holder — from where gossip
        spreads it back out.
        """
        honest_cells = self._honest_cells()
        if honest_cells and self._rng.random() < self.config.natural_fork_rate:
            br, bc = honest_cells[self._rng.randrange(len(honest_cells))]
            fork = self.fork_of(self.labels[br][bc])
            height = self.heights[br][bc]
            if height == fork.tip_height:
                fork.extend()
            else:
                fork = self._branch(fork, height, counterfeit=False)
                fork.extend()
                self.labels[br][bc] = fork.label
            self.heights[br][bc] = fork.tip_height
            return
        fork = self._best_honest_fork()
        fork.extend()
        # The winning pool's block surfaces at several well-connected
        # nodes at once (the pool's own full nodes): best-placed holders
        # of the honest branch, topped up with random cells when the
        # counterfeit fork displaced the holders.
        holders = [
            cell
            for cell in (honest_cells or [])
            if self.labels[cell[0]][cell[1]] == fork.label
        ]
        holders.sort(key=lambda cell: -self.heights[cell[0]][cell[1]])
        seeds = holders[: self.HONEST_SEED_CELLS]
        size = self.config.size
        guard = 0
        while len(seeds) < self.HONEST_SEED_CELLS and guard < 100:
            guard += 1
            cell = (self._rng.randrange(size), self._rng.randrange(size))
            if cell != self.config.attacker_cell and cell not in seeds:
                seeds.append(cell)
        for br, bc in seeds:
            self.labels[br][bc] = fork.label
            self.heights[br][bc] = fork.tip_height

    def _mine_attacker(self) -> None:
        """The attacker extends its counterfeit fork at its cell."""
        r, c = self.config.attacker_cell
        if self.attacker_fork is None:
            base_label = self.labels[r][c]
            base_fork = self.fork_of(base_label)
            self.attacker_fork = self._branch(
                base_fork, self.heights[r][c], counterfeit=True, label="B"
            )
        self.attacker_fork.extend()
        self.labels[r][c] = self.attacker_fork.label
        self.heights[r][c] = self.attacker_fork.tip_height

    def _branch(
        self,
        parent: ForkChain,
        branch_height: int,
        counterfeit: bool,
        label: Optional[str] = None,
    ) -> ForkChain:
        if label is None:
            if self._label_cursor >= len(self._LABELS):
                # Recycle: forks are short-lived; reuse dead labels.
                dead = [l for l in self.fork_deaths if l not in self._live_labels()]
                if not dead:
                    raise SimulationError("fork label space exhausted")
                label = dead[0]
                del self.forks[label]
                del self.fork_deaths[label]
            else:
                label = self._LABELS[self._label_cursor]
                self._label_cursor += 1
        fork = ForkChain(
            label=label,
            parent=parent,
            branch_height=branch_height,
            # Branches of a counterfeit chain stay counterfeit: their
            # history still contains the attacker's blocks.
            counterfeit=counterfeit or parent.counterfeit,
        )
        self.forks[label] = fork
        self.fork_births[label] = self.step_count
        return fork

    def _communicate(self) -> None:
        """Each node attempts one peer communication (paper semantics).

        The node contacts one random neighbour; with probability
        ``failure_rate`` the attempt fails.  Otherwise the pair compare
        chains and the shorter side adopts the longer one's view after
        the MD5-linkage check.  The attacker's cell never abandons the
        counterfeit fork.
        """
        size = self.config.size
        failure = self.config.failure_rate
        for r in range(size):
            for c in range(size):
                if failure and self._rng.random() < failure:
                    continue
                nr, nc = self._neighbors[(r, c)][self._rng.randrange(8)]
                self._reconcile((r, c), (nr, nc))

    def _reconcile(self, a: Tuple[int, int], b: Tuple[int, int]) -> None:
        ha = self.heights[a[0]][a[1]]
        hb = self.heights[b[0]][b[1]]
        if ha == hb:
            return
        (winner, loser) = (a, b) if ha > hb else (b, a)
        if loser == self.config.attacker_cell and self.attacker_fork is not None:
            return  # pinned: the attacker never reorgs away
        wl = self.labels[winner[0]][winner[1]]
        fork = self.fork_of(wl)
        self.labels[loser[0]][loser[1]] = wl
        self.heights[loser[0]][loser[1]] = self.heights[winner[0]][winner[1]]

    def _live_labels(self) -> set:
        return {label for row in self.labels for label in row}

    def _collect_dead_forks(self) -> None:
        live = self._live_labels()
        if self.attacker_fork is not None:
            live.add(self.attacker_fork.label)
        for label in list(self.forks):
            if label == "A":
                continue
            if label not in live and label not in self.fork_deaths:
                self.fork_deaths[label] = self.step_count

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def snapshot(self) -> GridSnapshot:
        return GridSnapshot(
            step=self.step_count,
            labels=tuple(tuple(row) for row in self.labels),
            heights=tuple(tuple(row) for row in self.heights),
        )

    def fork_fractions(self) -> Dict[str, float]:
        return self.snapshot().fork_fractions()

    def attacker_fraction(self) -> float:
        """Fraction of nodes currently on the counterfeit fork."""
        if self.attacker_fork is None:
            return 0.0
        return self.fork_fractions().get(self.attacker_fork.label, 0.0)

    def synced_fraction(self) -> float:
        """Fraction of nodes at the global maximum height."""
        max_height = max(max(row) for row in self.heights)
        at_tip = sum(
            1 for row in self.heights for height in row if height == max_height
        )
        return at_tip / self.config.num_nodes

    def fork_lifetimes_in_blocks(self) -> Dict[str, float]:
        """Lifetime of each dead fork in block intervals.

        Validation target: natural forks resolve within ~2-3 block
        intervals (§IV-B).
        """
        return {
            label: (self.fork_deaths[label] - self.fork_births[label])
            / self.config.steps_per_block
            for label in self.fork_deaths
            if label in self.fork_births
        }
