"""The paper's grid-based temporal-attack simulator (Figure 7).

The original study built this model in R (§V-B, "Simulation and Attack
Validation"); this is a faithful Python reimplementation of every
mechanic the paper describes:

- nodes on a square grid (size 25 shown in the figures, 100 = the full
  10,000-node network), each with the default 8 peers (the Moore
  neighbourhood, wrapping at the edges);
- per-step peer communication with a ~10% failure rate: "each time
  step represents one peer-to-peer communication attempt for each
  node";
- every node maintains a 64-bit MD5 hash-linked chain "as an internal
  error check" — adoption verifies linkage before switching;
- block production is Bernoulli per step with the honest network and
  the attacker splitting the hash rate (default 70/30);
- honest miners extend the chain view of a *random node*, so natural
  forks emerge whenever the network is out of sync, and are resolved
  by the longest-chain rule "within two or three block intervals";
- the attacker seeds its fork at a chosen cell (the paper's node
  [7,7]) and pins that node to the counterfeit chain;
- the span-ratio law ``T_delay = T_block / (R_span * sqrt(N))`` links
  the per-step delay to network-wide synchronization; R_span = 2.0 is
  the paper's synchronization target.

Two engines implement the model:

- :class:`GridSimulator` — the scalar reference engine.  Per-cell
  Python loops drive communication, but all *accounting* (per-label
  live-cell counts, the honest-cell index, the max-height histogram)
  is maintained incrementally, so no observation or mining decision
  ever rescans the grid.  Its random draws come from the stdlib
  ``"grid"`` stream and are bit-identical to the original
  implementation: published figure7 outputs do not move.
- :class:`GridSimulatorVec` — the vectorized scale engine.  State
  lives in NumPy integer arrays; each step's failure mask, neighbour
  choice, and height-compare/adopt reconcile are single array kernels.
  Its randomness follows the documented *vectorized RNG protocol*
  below and therefore differs stream-wise from the scalar engine:
  the two engines agree statistically (pinned by the cross-engine
  equivalence tests), not sample-by-sample.

Vectorized RNG protocol (``GridSimulatorVec``): all draws come from
the NumPy generator of stream ``"grid.vec"``
(``RngStreams(seed).numpy_stream("grid.vec")``).  Per step, in order:
one uniform for the honest-mining gate; one uniform for the attacker
gate when the attack is live; inside an honest mine, one uniform for
the natural-fork gate (when honest cells exist), one ``integers``
draw to pick the stale miner or per-guard ``integers`` pairs for seed
cells; then one length-N uniform vector (failure mask) and one
length-N ``integers(0, 8)`` vector (neighbour choice).  The protocol
depends only on ``(config, step)``, never on worker count or host, so
vectorized runs are deterministic per seed and identical under any
``jobs=N`` fan-out.

The synchronous reconcile resolves write conflicts deterministically:
every node sees all offers made this step (its partner's view, plus
every node that chose it as partner) and adopts the offer with the
greatest height, ties broken toward the lowest source cell index.

:func:`make_simulator` selects the engine: ``"auto"`` (the default)
uses the vectorized engine from :data:`VEC_SIZE_THRESHOLD` (size 50,
2,500 nodes) upward, where the kernel dominates Python overhead, and
the scalar engine below, keeping published small-grid artifacts
bit-identical.  A third engine, ``"graph"``
(:class:`repro.netsim.graph.GraphSimulatorVec`), generalizes the
vectorized kernel from the fixed ``(N, 8)`` neighbourhood to arbitrary
CSR adjacency; on a grid bridged through ``GraphSpec.from_grid`` it is
bit-identical to ``"vec"``.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..rng import RngStreams
from ..types import BITCOIN_BLOCK_INTERVAL, Seconds
from .timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..parallel.metrics import PhaseTimingCollector

__all__ = [
    "ENGINES",
    "GridConfig",
    "GridSnapshot",
    "GridSimulator",
    "GridSimulatorVec",
    "ForkChain",
    "VEC_SIZE_THRESHOLD",
    "make_simulator",
    "offer_source_bits",
    "span_ratio_delay",
]


def span_ratio_delay(
    num_nodes: int,
    span_ratio: float = 2.0,
    block_interval: Seconds = BITCOIN_BLOCK_INTERVAL,
) -> Seconds:
    """Maximum per-hop delay that keeps ``num_nodes`` synchronized.

    The paper's non-dimensional law: information must cross the network
    diameter ``R_span`` times per block interval; on a square grid the
    diameter is ~sqrt(N), hence ``T_delay = T_block / (R_span * sqrt(N))``.
    For N = 10,000 and R_span = 2.0 this gives the paper's 3-second
    per-communication interval.
    """
    if num_nodes < 1:
        raise ConfigurationError("num_nodes must be positive", num=num_nodes)
    if span_ratio <= 0:
        raise ConfigurationError("span_ratio must be positive", ratio=span_ratio)
    return block_interval / (span_ratio * math.sqrt(num_nodes))


@dataclass
class ForkChain:
    """One branch of the global block tree, as a hash-linked label chain.

    Fork ``A`` is the honest main chain from genesis; every divergence
    creates a new labelled fork with a ``parent`` and ``branch_height``
    (the last height shared with the parent).
    """

    label: str
    parent: Optional["ForkChain"]
    branch_height: int
    hashes: List[str] = field(default_factory=list)  # heights branch_height+1..
    counterfeit: bool = False
    # Ancestor hashes at heights <= branch_height are immutable once the
    # branch exists (parents only append), so resolutions are memoized:
    # repeated linkage checks stay O(1) instead of re-walking the parent
    # chain on every call.
    _ancestor_cache: Dict[int, str] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def tip_height(self) -> int:
        return self.branch_height + len(self.hashes)

    def tip_hash(self) -> str:
        return self.hash_at(self.tip_height)

    def hash_at(self, height: int) -> str:
        """Hash of this branch's block at ``height`` (follows parents)."""
        if height <= self.branch_height:
            if self.parent is None:
                if height == 0:
                    return "genesis"
                raise SimulationError("height below genesis", height=height)
            cached = self._ancestor_cache.get(height)
            if cached is None:
                cached = self.parent.hash_at(height)
                self._ancestor_cache[height] = cached
            return cached
        index = height - self.branch_height - 1
        if index >= len(self.hashes):
            raise SimulationError(
                "height above tip", height=height, tip=self.tip_height
            )
        return self.hashes[index]

    def extend(self) -> str:
        """Mine one block on this fork; returns the new block hash.

        The new hash links to the previous one with a 64-bit MD5
        digest, matching the paper's internal error check.
        """
        prev = self.tip_hash()
        payload = f"{prev}|{self.label}|{self.tip_height + 1}"
        new_hash = hashlib.md5(payload.encode("utf-8")).hexdigest()[:16]
        self.hashes.append(new_hash)
        return new_hash

    def shares_prefix_with(self, other: "ForkChain", height: int) -> bool:
        """Linkage check: do both branches agree at ``height``?"""
        try:
            return self.hash_at(height) == other.hash_at(height)
        except SimulationError:
            return False


@dataclass(frozen=True)
class GridConfig:
    """Parameters of the grid simulation.

    Attributes:
        size: Grid edge length (25 in the paper's figures; 100 = full
            network scale).
        failure_rate: Per-communication failure probability (~0.1).
        steps_per_block: Communication steps per expected block
            interval.  With the span-ratio law this is
            ``R_span * size`` (diameter crossings per block).
        attacker_share: Attacker's fraction of total hash rate (0.30 in
            Figure 7; 0 disables the attack).
        attacker_cell: Grid cell where the counterfeit fork is seeded
            (the paper's fork B emerges at node [7,7]).
        attack_start_step: Step at which the attacker begins.
        natural_fork_rate: Fraction of honest blocks mined by a
            poorly-synchronized miner on a stale view, creating the
            natural forks the paper observes resolving within 2-3
            block intervals.
        seed: Root seed.
    """

    size: int = 25
    failure_rate: float = 0.10
    steps_per_block: int = 50
    attacker_share: float = 0.30
    attacker_cell: Tuple[int, int] = (7, 7)
    attack_start_step: int = 0
    natural_fork_rate: float = 0.10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ConfigurationError("grid size must be >= 2", size=self.size)
        if not 0.0 <= self.failure_rate < 1.0:
            raise ConfigurationError("failure_rate in [0,1)")
        if self.steps_per_block < 1:
            raise ConfigurationError("steps_per_block must be >= 1")
        if not 0.0 <= self.attacker_share < 1.0:
            raise ConfigurationError("attacker_share in [0,1)")
        if not 0.0 <= self.natural_fork_rate <= 1.0:
            raise ConfigurationError("natural_fork_rate in [0,1]")
        row, col = self.attacker_cell
        if not (0 <= row < self.size and 0 <= col < self.size):
            raise ConfigurationError("attacker_cell outside grid")

    @property
    def num_nodes(self) -> int:
        return self.size * self.size

    @property
    def span_ratio(self) -> float:
        """Implied span ratio of this configuration.

        ``steps_per_block`` steps cross the diameter (≈ size hops)
        ``steps_per_block / size`` times per block interval.
        """
        return self.steps_per_block / self.size


@dataclass(frozen=True)
class GridSnapshot:
    """State of the grid at one step: fork label and height per cell."""

    step: int
    labels: Tuple[Tuple[str, ...], ...]
    heights: Tuple[Tuple[int, ...], ...]

    def fork_fractions(self) -> Dict[str, float]:
        """Fraction of nodes on each fork — Figure 7's colour shares."""
        counts: Dict[str, int] = {}
        for row in self.labels:
            for label in row:
                counts[label] = counts.get(label, 0) + 1
        total = sum(counts.values())
        return {label: count / total for label, count in counts.items()}

    def render(self) -> str:
        """ASCII rendering (one letter per cell) for logs and examples."""
        return "\n".join("".join(row) for row in self.labels)


class _GridEngineBase:
    """Shared mechanics of both grid engines.

    Mining decisions, fork bookkeeping (branching, label recycling,
    births/deaths), and the per-step phase structure are engine
    independent; subclasses provide cell storage, the communication
    kernel, and the incremental indices behind the observation API.
    """

    #: Labels assigned to successive natural forks (A is the main chain).
    _LABELS = "ACDEFGHIJKLMNOPQRSTUVWXYZ"

    #: Cells at which a freshly-mined honest block surfaces (the mining
    #: pool's own nodes), so the honest chain re-enters a captured grid
    #: from several points at once.
    HONEST_SEED_CELLS = 3

    def __init__(
        self,
        config: GridConfig,
        phase_metrics: Optional["PhaseTimingCollector"] = None,
    ) -> None:
        self.config = config
        self.streams = RngStreams(config.seed)
        self.main = ForkChain(label="A", parent=None, branch_height=0)
        self.forks: Dict[str, ForkChain] = {"A": self.main}
        self._label_cursor = 1  # next natural-fork label index
        self.step_count = 0
        self.attacker_fork: Optional[ForkChain] = None
        self.fork_births: Dict[str, int] = {"A": 0}
        self.fork_deaths: Dict[str, int] = {}
        self._phase_metrics = phase_metrics
        self._attacker_idx = self._attacker_index(config)
        self._timeline: Optional[Timeline] = None
        self._timeline_cursor = 0
        #: Steps at which timeline events fired (exactly-once audit trail).
        self.timeline_fired: List[int] = []
        self._on_fork_registered(self.main)

    # ------------------------------------------------------------------
    def fork_of(self, label: str) -> ForkChain:
        try:
            return self.forks[label]
        except KeyError:
            raise SimulationError("unknown fork", label=label) from None

    # ------------------------------------------------------------------
    # One simulation step
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one communication step: mining, then gossip.

        Timeline events attached via :meth:`attach_timeline` fire at
        the top of their step, before the mining phase, so a
        changepoint at step ``s`` governs step ``s``'s block production
        and gossip.
        """
        self.step_count += 1
        if self._timeline is not None:
            self._advance_timeline()
        metrics = self._phase_metrics
        if metrics is None:
            self._maybe_mine()
            self._communicate()
            self._collect_dead_forks()
            return
        start = time.perf_counter()
        self._maybe_mine()
        after_mine = time.perf_counter()
        self._communicate()
        after_comm = time.perf_counter()
        self._collect_dead_forks()
        after_collect = time.perf_counter()
        metrics.add("mine", after_mine - start)
        metrics.add("communicate", after_comm - after_mine)
        metrics.add("collect", after_collect - after_comm)

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    # ------------------------------------------------------------------
    # Timelines (tick-boundary parameter changes)
    # ------------------------------------------------------------------
    def attach_timeline(self, timeline: Timeline) -> None:
        """Install a :class:`~repro.netsim.timeline.Timeline`.

        Must happen before the first step; step-0 events apply to the
        initial state immediately.  Each event fires exactly once, at
        the tick boundary of its step (see :meth:`step`).
        """
        if self.step_count != 0:
            raise SimulationError(
                "timeline must attach before the first step",
                step=self.step_count,
            )
        if self._timeline is not None:
            raise SimulationError("a timeline is already attached")
        self._timeline = timeline
        self._timeline_cursor = 0
        self._advance_timeline()

    def _advance_timeline(self) -> None:
        """Fire every event due at or before the current step, once."""
        events = self._timeline.events
        cursor = self._timeline_cursor
        while cursor < len(events) and events[cursor].step <= self.step_count:
            self._apply_timeline_event(events[cursor])
            self.timeline_fired.append(self.step_count)
            cursor += 1
        self._timeline_cursor = cursor

    def _apply_timeline_event(self, event) -> None:
        updates = {}
        if event.attacker_share is not None:
            updates["attacker_share"] = event.attacker_share
        if event.failure_rate is not None:
            updates["failure_rate"] = event.failure_rate
        if updates:
            old = self.config
            # replace() re-runs __post_init__, so the new regime is
            # validated exactly like a constructor-time config.
            self.config = replace(old, **updates)
            self._on_config_replaced(old, self.config)
        if event.partition_fraction is not None:
            self._apply_partition_fraction(event.partition_fraction)

    def _on_config_replaced(self, old, new) -> None:
        """Hook: derived per-config state must refresh here."""

    def _apply_partition_fraction(self, fraction: float) -> None:
        raise ConfigurationError(
            "partition timeline events require the graph engine",
            engine=type(self).__name__,
        )

    def _maybe_mine(self) -> None:
        p_block = 1.0 / self.config.steps_per_block
        attack_live = (
            self.config.attacker_share > 0.0
            and self.step_count >= self.config.attack_start_step
        )
        honest_share = 1.0 - (self.config.attacker_share if attack_live else 0.0)
        if self._rng.random() < p_block * honest_share:
            self._mine_honest()
        if attack_live and self._rng.random() < p_block * self.config.attacker_share:
            self._mine_attacker()

    def _best_honest_fork(self) -> ForkChain:
        """The longest non-counterfeit branch in the registry."""
        candidates = [f for f in self.forks.values() if not f.counterfeit]
        return max(candidates, key=lambda f: (f.tip_height, f.label == "A"))

    def _mine_honest(self) -> None:
        """An honest miner finds a block.

        Honest miners never build on the counterfeit branch — they keep
        mining the honest chain even while victim nodes' *views* are
        captured, which is why "the longer chain A overwhelms fork B"
        in the paper's panels despite B's transient leads.  With
        probability ``1 - natural_fork_rate`` the block extends the
        best honest branch; otherwise a poorly-synchronized miner
        builds on a random honest cell's stale view, creating the
        natural forks C, D, ... of Figure 7(c).

        The new tip is deposited at a grid cell (the miner's own node):
        the best-placed holder of that branch, or a random cell if the
        counterfeit fork displaced every holder — from where gossip
        spreads it back out.
        """
        honest_count = self._honest_count()
        if honest_count and self._rng.random() < self.config.natural_fork_rate:
            idx = self._honest_cell_at(self._rand_below(honest_count))
            fork = self.fork_of(self._label_at(idx))
            height = self._height_at(idx)
            if height == fork.tip_height:
                fork.extend()
            else:
                fork = self._branch(fork, height, counterfeit=False)
                fork.extend()
            self._set_cell(idx, fork.label, fork.tip_height)
            return
        fork = self._best_honest_fork()
        fork.extend()
        # The winning pool's block surfaces at several well-connected
        # nodes at once (the pool's own full nodes): best-placed holders
        # of the honest branch, topped up with random cells when the
        # counterfeit fork displaced the holders.
        seeds = self._holder_cells(fork)
        guard = 0
        while len(seeds) < self.HONEST_SEED_CELLS and guard < 100:
            guard += 1
            idx = self._random_seed_cell()
            if idx != self._attacker_idx and idx not in seeds:
                seeds.append(idx)
        for idx in seeds:
            # Longest-chain rule: a node already ahead of the new tip
            # (e.g. captured by a longer counterfeit branch) does not
            # reorg down to it; the block still extends the registry's
            # honest branch and seeds once that branch catches up.
            if fork.tip_height > self._height_at(idx):
                self._set_cell(idx, fork.label, fork.tip_height)

    def _mine_attacker(self) -> None:
        """The attacker extends its counterfeit fork at its cell."""
        idx = self._attacker_idx
        if self.attacker_fork is None:
            base_fork = self.fork_of(self._label_at(idx))
            self.attacker_fork = self._branch(
                base_fork, self._height_at(idx), counterfeit=True, label="B"
            )
        self.attacker_fork.extend()
        self._set_cell(idx, self.attacker_fork.label, self.attacker_fork.tip_height)

    def _branch(
        self,
        parent: ForkChain,
        branch_height: int,
        counterfeit: bool,
        label: Optional[str] = None,
    ) -> ForkChain:
        if label is None:
            if self._label_cursor >= len(self._LABELS):
                # Recycle: forks are short-lived; reuse dead labels.
                live = self._live_labels()
                dead = [l for l in self.fork_deaths if l not in live]
                if not dead:
                    raise SimulationError("fork label space exhausted")
                label = dead[0]
                del self.forks[label]
                del self.fork_deaths[label]
            else:
                label = self._LABELS[self._label_cursor]
                self._label_cursor += 1
        fork = ForkChain(
            label=label,
            parent=parent,
            branch_height=branch_height,
            # Branches of a counterfeit chain stay counterfeit: their
            # history still contains the attacker's blocks.
            counterfeit=counterfeit or parent.counterfeit,
        )
        self.forks[label] = fork
        self.fork_births[label] = self.step_count
        self._on_fork_registered(fork)
        return fork

    def _collect_dead_forks(self) -> None:
        # Only forks that are not the main chain, not the attacker's,
        # and not already dead can die this step; when no such fork is
        # registered (the common steady state) the holder census is
        # skipped entirely — the census marks nothing in that case, so
        # skipping it is observationally identical.
        attacker_label = (
            self.attacker_fork.label if self.attacker_fork is not None else None
        )
        if all(
            label == "A" or label == attacker_label or label in self.fork_deaths
            for label in self.forks
        ):
            return
        live = self._live_labels()
        if attacker_label is not None:
            live.add(attacker_label)
        for label in list(self.forks):
            if label == "A":
                continue
            if label not in live and label not in self.fork_deaths:
                self.fork_deaths[label] = self.step_count

    # ------------------------------------------------------------------
    # Engine hooks (cell storage and incremental indices)
    # ------------------------------------------------------------------
    def _attacker_index(self, config) -> int:
        """Flat cell index of the attacker (grid configs carry a cell)."""
        row, col = config.attacker_cell
        return row * config.size + col

    def _random_seed_cell(self) -> int:
        """Draw one candidate honest-seed cell.

        Grid engines draw a row and a column separately — the original
        two-draw protocol, load-bearing for golden trajectories.
        """
        size = self.config.size
        row = self._rand_below(size)
        col = self._rand_below(size)
        return row * size + col

    def _on_fork_registered(self, fork: ForkChain) -> None:
        """Called whenever a fork enters the registry (including genesis)."""

    def _rand_below(self, upper: int) -> int:
        raise NotImplementedError

    def _label_at(self, idx: int) -> str:
        raise NotImplementedError

    def _height_at(self, idx: int) -> int:
        raise NotImplementedError

    def _set_cell(self, idx: int, label: str, height: int) -> None:
        raise NotImplementedError

    def _honest_count(self) -> int:
        raise NotImplementedError

    def _honest_cell_at(self, k: int) -> int:
        raise NotImplementedError

    def _holder_cells(self, fork: ForkChain) -> List[int]:
        raise NotImplementedError

    def _communicate(self) -> None:
        raise NotImplementedError

    def _live_labels(self) -> Set[str]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def snapshot(self) -> GridSnapshot:
        return GridSnapshot(
            step=self.step_count,
            labels=tuple(tuple(row) for row in self.labels),
            heights=tuple(tuple(row) for row in self.heights),
        )

    def attacker_fraction(self) -> float:
        """Fraction of nodes currently on the counterfeit fork."""
        if self.attacker_fork is None:
            return 0.0
        return self.fork_fractions().get(self.attacker_fork.label, 0.0)

    def fork_lifetimes_in_blocks(self) -> Dict[str, float]:
        """Lifetime of each dead fork in block intervals.

        Validation target: natural forks resolve within ~2-3 block
        intervals (§IV-B).
        """
        return {
            label: (self.fork_deaths[label] - self.fork_births[label])
            / self.config.steps_per_block
            for label in self.fork_deaths
            if label in self.fork_births
        }


class GridSimulator(_GridEngineBase):
    """Step-driven grid network with fork propagation and an attacker.

    The scalar reference engine.  Draws come from the stdlib ``"grid"``
    stream in the exact order of the original implementation, so runs
    are bit-identical to the pre-optimization engine (pinned by the
    golden-trajectory tests).  All observation queries are answered
    from incrementally maintained indices:

    - ``_label_cells``: label -> set of cells currently on that fork
      (fork fractions, live labels, and holder selection without grid
      scans);
    - ``_counterfeit_cells``: cells whose fork is counterfeit (the
      honest-cell index: count and k-th-cell queries in O(#captured));
    - ``_height_counts`` / ``_max_height``: histogram of cell heights
      (synced fraction in O(1), max maintained under the rare height
      decreases when a counterfeit region is reclaimed).
    """

    def __init__(
        self,
        config: GridConfig,
        phase_metrics: Optional["PhaseTimingCollector"] = None,
    ) -> None:
        super().__init__(config, phase_metrics)
        self._rng = self.streams.stream("grid")
        num_nodes = config.num_nodes
        # Flat row-major cell state: index = row * size + col.
        self._labels: List[str] = ["A"] * num_nodes
        self._heights: List[int] = [0] * num_nodes
        self._label_cells: Dict[str, Set[int]] = {"A": set(range(num_nodes))}
        self._counterfeit_cells: Set[int] = set()
        self._height_counts: Dict[int, int] = {0: num_nodes}
        self._max_height = 0
        self._neighbors = self._build_neighbors(config.size)

    # ------------------------------------------------------------------
    @staticmethod
    def _build_neighbors(size: int) -> List[List[int]]:
        """Moore neighbourhood (8 peers) with toroidal wrapping.

        Flat: entry ``row * size + col`` lists the 8 neighbour indices,
        in the same (dr, dc) enumeration order as always — the order is
        load-bearing, ``randrange(8)`` indexes into it.
        """
        neighbors: List[List[int]] = []
        for r in range(size):
            for c in range(size):
                cell_neighbors = []
                for dr in (-1, 0, 1):
                    for dc in (-1, 0, 1):
                        if dr == 0 and dc == 0:
                            continue
                        cell_neighbors.append(
                            ((r + dr) % size) * size + ((c + dc) % size)
                        )
                neighbors.append(cell_neighbors)
        return neighbors

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def _rand_below(self, upper: int) -> int:
        return self._rng.randrange(upper)

    def _label_at(self, idx: int) -> str:
        return self._labels[idx]

    def _height_at(self, idx: int) -> int:
        return self._heights[idx]

    def _set_cell(self, idx: int, label: str, height: int) -> None:
        old_label = self._labels[idx]
        if label != old_label:
            self._labels[idx] = label
            cells = self._label_cells
            cells[old_label].discard(idx)
            holder = cells.get(label)
            if holder is None:
                cells[label] = {idx}
            else:
                holder.add(idx)
            if self.forks[label].counterfeit:
                self._counterfeit_cells.add(idx)
            else:
                self._counterfeit_cells.discard(idx)
        old_height = self._heights[idx]
        if height != old_height:
            self._heights[idx] = height
            counts = self._height_counts
            remaining = counts[old_height] - 1
            if remaining:
                counts[old_height] = remaining
            else:
                del counts[old_height]
            counts[height] = counts.get(height, 0) + 1
            if height > self._max_height:
                self._max_height = height
            elif old_height == self._max_height and old_height not in counts:
                peak = self._max_height - 1
                while peak not in counts:
                    peak -= 1
                self._max_height = peak

    def _honest_count(self) -> int:
        """Number of non-counterfeit cells excluding the attacker's."""
        excluded = len(self._counterfeit_cells)
        if self._attacker_idx not in self._counterfeit_cells:
            excluded += 1
        return self.config.num_nodes - excluded

    def _honest_cell_at(self, k: int) -> int:
        """The k-th honest cell in row-major order, via the exclusion set."""
        idx = k
        for excluded in sorted(  # repro-lint: disable=RPL311 scalar reference engine; exclusion set is attacker-sized, not node-sized
            self._counterfeit_cells | {self._attacker_idx}
        ):
            if excluded <= idx:
                idx += 1
            else:
                break
        return idx

    def _holder_cells(self, fork: ForkChain) -> List[int]:
        """Best-placed holders of ``fork``: top cells by height, ties in
        row-major order (the original stable-sort tie-break)."""
        cells = self._label_cells.get(fork.label)
        if not cells:
            return []
        heights = self._heights
        attacker_idx = self._attacker_idx
        return heapq.nsmallest(
            self.HONEST_SEED_CELLS,
            (idx for idx in cells if idx != attacker_idx),  # repro-lint: disable=RPL311 scalar reference engine; nsmallest keeps a 3-element heap
            key=lambda idx: (-heights[idx], idx),
        )

    def _communicate(self) -> None:
        """Each node attempts one peer communication (paper semantics).

        The node contacts one random neighbour; with probability
        ``failure_rate`` the attempt fails.  Otherwise the pair compare
        chains and the shorter side adopts the longer one's view after
        the MD5-linkage check.  The attacker's cell never abandons the
        counterfeit fork.
        """
        failure = self.config.failure_rate
        rng_random = self._rng.random
        rng_randrange = self._rng.randrange
        neighbors = self._neighbors
        heights = self._heights
        labels = self._labels
        set_cell = self._set_cell
        attacker_idx = self._attacker_idx if self.attacker_fork is not None else -1
        for idx in range(self.config.num_nodes):  # repro-lint: disable=RPL311 the scalar reference engine is per-node by definition; GridSimulatorVec is the vectorized path
            if failure and rng_random() < failure:
                continue
            other = neighbors[idx][rng_randrange(8)]
            height_a = heights[idx]
            height_b = heights[other]
            if height_a == height_b:
                continue
            winner, loser = (idx, other) if height_a > height_b else (other, idx)
            if loser == attacker_idx:
                continue  # pinned: the attacker never reorgs away
            set_cell(loser, labels[winner], heights[winner])

    def _live_labels(self) -> Set[str]:
        return {label for label, cells in self._label_cells.items() if cells}

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def labels(self) -> List[List[str]]:
        """Per-cell fork labels as nested rows (observation view)."""
        size = self.config.size
        flat = self._labels
        return [flat[r * size : (r + 1) * size] for r in range(size)]

    @property
    def heights(self) -> List[List[int]]:
        """Per-cell chain heights as nested rows (observation view)."""
        size = self.config.size
        flat = self._heights
        return [flat[r * size : (r + 1) * size] for r in range(size)]

    def fork_fractions(self) -> Dict[str, float]:
        total = self.config.num_nodes
        return {
            label: len(cells) / total
            for label, cells in self._label_cells.items()
            if cells
        }

    def synced_fraction(self) -> float:
        """Fraction of nodes at the global maximum height."""
        return self._height_counts[self._max_height] / self.config.num_nodes


#: Dtype the vectorized engines carry heights and encoded offers in.
#: The scatter-max reconcile packs ``(height, source)`` into a single
#: integer ``(height << source_bits) | (N - 1 - source)`` (see
#: :func:`offer_source_bits`), so this dtype bounds how far a
#: simulation can mine before the code overflows.
OFFER_DTYPE = np.int64

#: Mined-height headroom every topology must leave in the offer
#: encoding; :class:`~repro.netsim.graph.GraphSpec` refuses node counts
#: that could not mine this many blocks without overflowing.
OFFER_HEIGHT_HEADROOM = 1 << 20


def offer_source_bits(num_nodes: int) -> int:
    """Bits the offer encoding reserves for the reversed source index.

    Offers pack ``(height, source)`` as
    ``(height << bits) | (num_nodes - 1 - source)`` — a shift/mask
    compression of the historical ``height * N + (N - 1 - source)``
    multiply encode.  Both encodings are strictly monotone in the
    ``(height, N - 1 - source)`` lexicographic order, so the max-reduce
    reconcile picks the same winner (greatest height, ties toward the
    lowest source index) under either; the shift form decodes with a
    shift and a mask instead of a division and a modulo.
    """
    if num_nodes <= 1:
        return 1
    return int(num_nodes - 1).bit_length()


class _VecEngineBase(_GridEngineBase):
    """Shared machinery of the vectorized engines.

    Cell state is two flat NumPy arrays (fork id, height); fork ids
    index a small per-fork table (labels, counterfeit flags), so label
    decoding never walks the registry.  The synchronous push+pull
    scatter-max reconcile — encode each offer as
    ``(height << source_bits) | (N - 1 - source)`` (see
    :func:`offer_source_bits`) so one elementwise/scatter maximum
    resolves the height compare *and* the lowest-source tie-break —
    lives here; subclasses supply the per-step partner choice (a fixed
    ``(N, 8)`` matrix for the grid, CSR adjacency for arbitrary
    graphs) and the observation layout.
    """

    #: Name of the NumPy stream the engine draws from.
    RNG_STREAM = "grid.vec"

    def __init__(
        self,
        config,
        phase_metrics: Optional["PhaseTimingCollector"] = None,
    ) -> None:
        # Fork-id tables must exist before the base registers fork A.
        self._fork_ids: Dict[str, int] = {}
        self._id_labels: List[str] = []
        # A + 24 natural labels + B: at most len(_LABELS) + 1 ids ever.
        self._counterfeit_ids = np.zeros(len(self._LABELS) + 1, dtype=bool)
        super().__init__(config, phase_metrics)
        self._rng = self.streams.numpy_stream(self.RNG_STREAM)
        num_nodes = config.num_nodes
        self._num_nodes = num_nodes
        self._lab = np.zeros(num_nodes, dtype=np.int16)
        self._hgt = np.zeros(num_nodes, dtype=OFFER_DTYPE)
        self._cell_ids = np.arange(num_nodes, dtype=OFFER_DTYPE)
        self._src_bits = offer_source_bits(num_nodes)
        self._src_mask = (1 << self._src_bits) - 1
        # Reversed source ids: the low bits of every cell's offer code.
        self._rev_ids = (num_nodes - 1) - self._cell_ids
        self._honest_cells_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def _on_fork_registered(self, fork: ForkChain) -> None:
        fid = self._fork_ids.get(fork.label)
        if fid is None:
            fid = len(self._id_labels)
            self._fork_ids[fork.label] = fid
            self._id_labels.append(fork.label)
        # Recycled labels reuse their id; the flag tracks the new fork.
        self._counterfeit_ids[fid] = fork.counterfeit

    def _rand_below(self, upper: int) -> int:
        return int(self._rng.integers(upper))

    def _label_at(self, idx: int) -> str:
        return self._id_labels[int(self._lab[idx])]

    def _height_at(self, idx: int) -> int:
        return int(self._hgt[idx])

    def _set_cell(self, idx: int, label: str, height: int) -> None:
        self._lab[idx] = self._fork_ids[label]
        self._hgt[idx] = height

    def _honest_count(self) -> int:
        honest = ~self._counterfeit_ids[self._lab]
        honest[self._attacker_idx] = False
        self._honest_cells_cache = np.flatnonzero(honest)
        return int(self._honest_cells_cache.size)

    def _honest_cell_at(self, k: int) -> int:
        return int(self._honest_cells_cache[k])

    def _holder_cells(self, fork: ForkChain) -> List[int]:
        fid = self._fork_ids[fork.label]
        holders = np.flatnonzero(self._lab == fid)
        holders = holders[holders != self._attacker_idx]
        k = self.HONEST_SEED_CELLS
        if holders.size > k:
            # Top cells by height, ties toward the lowest cell index:
            # the offer code (height << bits | reversed index) orders
            # exactly that way, so a bounded argpartition selects the
            # same cells the historical full lexsort did without
            # sorting all holders.
            codes = (self._hgt[holders] << self._src_bits) | self._rev_ids[holders]
            top = np.argpartition(codes, holders.size - k)[holders.size - k :]
            top = top[np.argsort(-codes[top], kind="stable")]
            holders = holders[top]
        return [int(idx) for idx in holders]  # repro-lint: disable=RPL311 holders is sliced to HONEST_SEED_CELLS (3) above

    # ------------------------------------------------------------------
    # The shared scatter-max reconcile
    # ------------------------------------------------------------------
    def _offer_codes(self) -> np.ndarray:
        """Every cell's offer: ``(height << bits) | (N - 1 - source)``."""
        return (self._hgt << self._src_bits) | self._rev_ids

    def _push_pull_best(self, ok: np.ndarray, partner: np.ndarray) -> np.ndarray:
        """Best offer per cell from this step's successful contacts.

        Each node's best offer combines the pull side (its chosen
        partner's view) and the push side (every node that chose it as
        partner this step); ``ok`` masks the failed attempts.
        """
        offer = self._offer_codes()
        best = np.where(ok, offer[partner], 0)
        np.maximum.at(best, partner[ok], offer[ok])
        return best

    def _adopt_from(self, best: np.ndarray) -> None:
        """Adopt every strictly-better best offer (attacker pinned)."""
        heights = self._hgt
        new_height = best >> self._src_bits
        adopt = new_height > heights
        if self.attacker_fork is not None:
            adopt[self._attacker_idx] = False  # pinned
        adopting = np.flatnonzero(adopt)
        if adopting.size == 0:
            return
        # Decode sources only for the (usually small) adopting subset.
        source = (self._num_nodes - 1) - (best[adopting] & self._src_mask)
        self._lab[adopting] = self._lab[source]
        self._hgt[adopting] = new_height[adopting]

    def _live_labels(self) -> Set[str]:
        counts = np.bincount(self._lab, minlength=len(self._id_labels))
        return {self._id_labels[i] for i in np.flatnonzero(counts)}  # repro-lint: disable=RPL311 label-count scale (few dozen forks), not node scale

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def fork_fractions(self) -> Dict[str, float]:
        counts = np.bincount(self._lab, minlength=len(self._id_labels))
        total = self.config.num_nodes
        return {
            self._id_labels[i]: int(counts[i]) / total
            for i in np.flatnonzero(counts).tolist()
        }

    def synced_fraction(self) -> float:
        """Fraction of nodes at the global maximum height."""
        at_tip = int(np.count_nonzero(self._hgt == self._hgt.max()))
        return at_tip / self.config.num_nodes


class GridSimulatorVec(_VecEngineBase):
    """Vectorized grid engine: NumPy arrays and per-step array kernels.

    Cell state and the synchronous height-compare/adopt kernel come
    from :class:`_VecEngineBase`; this engine adds the precomputed
    ``(N, 8)`` Moore-neighbourhood index matrix and the grid-shaped
    observation views (see the module docstring for the RNG protocol
    and the conflict rule).

    Semantics differ from :class:`GridSimulator` in exactly one way:
    the scalar engine reconciles pairs sequentially within a step
    (cell 0's adoption is visible to cell 1's comparison), while this
    engine reconciles all pairs against the step's starting state.
    Both are faithful one-communication-per-node models; their fork
    trajectories agree in distribution (pinned by the cross-engine
    statistical-equivalence tests), not draw-by-draw.
    """

    def __init__(
        self,
        config: GridConfig,
        phase_metrics: Optional["PhaseTimingCollector"] = None,
    ) -> None:
        super().__init__(config, phase_metrics)
        self._nbrs = self._build_neighbor_matrix(config.size)

    # ------------------------------------------------------------------
    @staticmethod
    def _build_neighbor_matrix(size: int) -> np.ndarray:
        """Moore neighbourhood as an ``(N, 8)`` flat-index matrix."""
        rows = np.arange(size).repeat(size)
        cols = np.tile(np.arange(size), size)
        offsets = ((-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1))
        columns = [
            ((rows + dr) % size) * size + ((cols + dc) % size) for dr, dc in offsets
        ]
        return np.stack(columns, axis=1).astype(np.int64)

    def _communicate(self) -> None:
        """Synchronous communication kernel over all N nodes.

        Per step: one length-N uniform vector (failure mask), one
        length-N ``integers(0, 8)`` vector (neighbour choice), then the
        shared scatter-max reconcile.
        """
        rng = self._rng
        num_nodes = self._num_nodes
        fail = rng.random(num_nodes) < self.config.failure_rate
        choice = rng.integers(0, 8, size=num_nodes)
        partner = self._nbrs[self._cell_ids, choice]
        ok = ~fail
        self._adopt_from(self._push_pull_best(ok, partner))

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def labels(self) -> List[List[str]]:
        """Per-cell fork labels as nested rows (observation view)."""
        size = self.config.size
        id_labels = self._id_labels
        flat = [id_labels[i] for i in self._lab.tolist()]
        return [flat[r * size : (r + 1) * size] for r in range(size)]

    @property
    def heights(self) -> List[List[int]]:
        """Per-cell chain heights as nested rows (observation view)."""
        size = self.config.size
        flat = self._hgt.tolist()
        return [flat[r * size : (r + 1) * size] for r in range(size)]


#: Grid edge length from which ``engine="auto"`` switches to the
#: vectorized engine (2,500 nodes; below this the scalar engine is
#: competitive and keeps published outputs bit-identical).
VEC_SIZE_THRESHOLD = 50

#: Accepted ``engine=`` values.
ENGINES = ("auto", "scalar", "vec", "graph")


def make_simulator(
    config,
    engine: str = "auto",
    phase_metrics: Optional["PhaseTimingCollector"] = None,
    delay_model=None,
    tick_seconds: Optional[Seconds] = None,
) -> _GridEngineBase:
    """Build the simulation engine for ``config``.

    ``config`` is a :class:`GridConfig` or a
    :class:`~repro.netsim.graph.GraphConfig`.  ``engine``:
    ``"scalar"`` (bit-identical reference), ``"vec"`` (NumPy kernel,
    own RNG protocol), ``"graph"`` (CSR sparse-adjacency kernel for
    arbitrary topologies; a grid config is bridged via
    ``GraphSpec.from_grid`` and stays bit-identical to ``"vec"``), or
    ``"auto"`` — for grid configs, vectorized from
    :data:`VEC_SIZE_THRESHOLD` upward and scalar below; for graph
    configs, always the graph engine (graph topologies have no scalar
    or fixed-neighbour fallback, so ``"auto"`` can never silently
    degrade them).

    ``delay_model`` (an :class:`~repro.netsim.latency.EmpiricalLatency`
    or a name from :data:`~repro.netsim.latency.DELAY_MODELS`) draws
    calibrated per-edge propagation delays through
    :meth:`~repro.netsim.graph.GraphSpec.with_delay_model`, quantized
    to ticks of ``tick_seconds`` (default: the span-ratio tick).  Only
    the graph engine carries per-edge delays, so a delay model with a
    grid engine is a configuration error rather than a silent no-op.
    """
    import dataclasses

    from .graph import GraphConfig, GraphSimulatorVec, graph_config_from_grid
    from .latency import DELAY_MODELS

    if engine not in ENGINES:
        raise ConfigurationError(
            "unknown grid engine", engine=engine, choices=ENGINES
        )
    if isinstance(delay_model, str):
        if delay_model not in DELAY_MODELS:
            raise ConfigurationError(
                "unknown delay model",
                delay_model=delay_model,
                choices=tuple(sorted(DELAY_MODELS)),
            )
        delay_model = DELAY_MODELS[delay_model]
    if isinstance(config, GraphConfig):
        if engine not in ("auto", "graph"):
            raise ConfigurationError(
                "graph configs require the graph engine",
                engine=engine,
                choices=("auto", "graph"),
            )
        if delay_model is not None:
            config = dataclasses.replace(
                config,
                spec=config.spec.with_delay_model(
                    delay_model, tick_seconds=tick_seconds
                ),
            )
        return GraphSimulatorVec(config, phase_metrics=phase_metrics)
    if engine == "graph":
        graph_config = graph_config_from_grid(config)
        if delay_model is not None:
            graph_config = dataclasses.replace(
                graph_config,
                spec=graph_config.spec.with_delay_model(
                    delay_model, tick_seconds=tick_seconds
                ),
            )
        return GraphSimulatorVec(graph_config, phase_metrics=phase_metrics)
    if delay_model is not None:
        raise ConfigurationError(
            "delay models require the graph engine", engine=engine
        )
    if engine == "auto":
        engine = "vec" if config.size >= VEC_SIZE_THRESHOLD else "scalar"
    cls = GridSimulatorVec if engine == "vec" else GridSimulator
    return cls(config, phase_metrics=phase_metrics)
