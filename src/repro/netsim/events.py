"""Discrete-event simulation kernel.

A minimal, fast priority-queue scheduler.  Events are plain callables;
ordering is (time, sequence) so simultaneous events run in scheduling
order and the simulation is fully deterministic.  The kernel knows
nothing about networks or blocks — everything above it is composed from
``schedule`` calls.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SchedulingError
from ..types import Seconds

__all__ = ["EventQueue", "Simulator"]

Action = Callable[[], None]


class EventQueue:
    """A time-ordered queue of callables with cancellation support."""

    def __init__(self) -> None:
        self._heap: List[Tuple[Seconds, int, Action]] = []
        self._counter = itertools.count()
        self._cancelled: set = set()

    def push(self, time: Seconds, action: Action) -> int:
        """Enqueue ``action`` at ``time``; returns a cancellable token."""
        token = next(self._counter)
        heapq.heappush(self._heap, (time, token, action))
        return token

    def cancel(self, token: int) -> None:
        """Cancel a pending event (lazy deletion)."""
        self._cancelled.add(token)

    def pop(self) -> Optional[Tuple[Seconds, int, Action]]:
        """Next live event, or None when empty."""
        while self._heap:
            time, token, action = heapq.heappop(self._heap)
            if token in self._cancelled:
                self._cancelled.discard(token)
                continue
            return time, token, action
        return None

    def peek_time(self) -> Optional[Seconds]:
        while self._heap:
            time, token, _ = self._heap[0]
            if token in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(token)
                continue
            return time
        return None

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class Simulator:
    """The simulation clock plus its event queue.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("at t=10"))
        sim.run_until(60.0)

    Events scheduled in the past raise; events may freely schedule
    further events.  ``run_until`` stops *after* processing every event
    at or before the horizon, leaving ``now`` at the horizon.
    """

    def __init__(self, start: Seconds = 0.0) -> None:
        self.now: Seconds = start
        self.queue = EventQueue()
        self.events_processed = 0

    def schedule(self, delay: Seconds, action: Action) -> int:
        """Run ``action`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SchedulingError("cannot schedule in the past", delay=delay)
        return self.queue.push(self.now + delay, action)

    def schedule_at(self, time: Seconds, action: Action) -> int:
        """Run ``action`` at absolute simulation ``time``."""
        if time < self.now:
            raise SchedulingError("cannot schedule in the past", time=time, now=self.now)
        return self.queue.push(time, action)

    def cancel(self, token: int) -> None:
        self.queue.cancel(token)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        item = self.queue.pop()
        if item is None:
            return False
        time, _, action = item
        if time < self.now:
            raise SchedulingError("event time went backwards", time=time, now=self.now)
        self.now = time
        action()
        self.events_processed += 1
        return True

    def run_until(self, horizon: Seconds) -> int:
        """Process all events up to and including ``horizon``.

        Returns the number of events processed.  ``now`` ends at
        ``horizon`` even if the queue drained earlier, so periodic
        samplers relying on the clock stay aligned.
        """
        if horizon < self.now:
            raise SchedulingError("horizon in the past", horizon=horizon, now=self.now)
        processed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > horizon:
                break
            self.step()
            processed += 1
        self.now = horizon
        return processed

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (optionally capped at ``max_events``)."""
        processed = 0
        while self.step():
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed
