"""Miners, mining pools, and stratum servers.

Mining pools are the paper's Table IV actors: each pool aggregates hash
power behind a *stratum server* whose IP lives in some AS.  Hijack the
stratum prefix and the pool's hash rate vanishes from the network —
the spatial attack on miners.  Pools that stay reachable mine on their
host node's current best tip with exponentially-distributed block
times proportional to their hash share (see
:class:`repro.blockchain.pow.MiningModel`).

An attacker pool can be switched into *counterfeit* mode: its blocks
are flagged and delivered only to chosen victims instead of being
broadcast — the temporal attack's feeding mechanism (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, TYPE_CHECKING

from ..blockchain.block import Block
from ..blockchain.pow import MiningModel
from ..blockchain.tx import Transaction
from ..errors import ConfigurationError
from ..types import Seconds

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

__all__ = ["StratumServer", "MiningPool", "Miner"]

#: Current block subsidy in satoshi-less simulation units.
BLOCK_REWARD = 50

#: Max non-coinbase transactions a pool packs per block.
BLOCK_TX_LIMIT = 50


@dataclass
class StratumServer:
    """A pool's public work-distribution endpoint.

    Attributes:
        pool_name: Owning pool.
        asn: AS hosting the server (Table IV mapping).
        ip: Server address string (informational).
        reachable: Cleared when the hosting prefix is hijacked; an
            unreachable stratum server idles its whole pool.
    """

    pool_name: str
    asn: int
    ip: str = ""
    reachable: bool = True


class MiningPool:
    """A mining pool mining on top of one full node's chain view.

    ``pool_id`` feeds the coinbase and the block header's ``miner_id``,
    so it is part of every mined block's hash.  It must therefore be a
    *per-network* ordinal (assigned by :meth:`Network.add_pool` from the
    pool's position), never drawn from process-global state: a shared
    counter would make block hashes depend on how many pools any other
    simulation in the process (or in a forked worker's inherited state)
    had already created, silently breaking same-seed reproducibility.
    """

    def __init__(
        self,
        name: str,
        hash_share: float,
        node_id: int,
        stratum: Optional[StratumServer] = None,
        pool_id: int = 0,
    ) -> None:
        if not 0.0 < hash_share <= 1.0:
            raise ConfigurationError("hash share must be in (0,1]", share=hash_share)
        self.pool_id = pool_id
        self.name = name
        self.hash_share = hash_share
        self.node_id = node_id
        self.stratum = stratum or StratumServer(pool_name=name, asn=0)
        self.blocks_mined = 0
        # Attack mode: counterfeit blocks fed only to these victims.
        self.counterfeit_mode = False
        self.victim_ids: List[int] = []
        # Tip of the attacker's private branch while in counterfeit
        # mode; successive counterfeit blocks chain on it so the fork
        # can be "sustained with successive forks" (§V-B).
        self.private_tip: Optional[Block] = None
        # Transactions the attacker chooses to include in counterfeit
        # blocks (it crafts those blocks itself rather than packing the
        # public mempool — which may hold conflicting honest spends).
        self.counterfeit_txs: List[Transaction] = []

    @property
    def active(self) -> bool:
        """Whether the pool currently contributes hash power."""
        return self.stratum.reachable

    def enter_counterfeit_mode(self, victim_ids: Sequence[int]) -> None:
        """Switch to feeding flagged blocks to ``victim_ids`` only."""
        self.counterfeit_mode = True
        self.victim_ids = list(victim_ids)

    def exit_counterfeit_mode(self) -> None:
        self.counterfeit_mode = False
        self.victim_ids = []
        self.private_tip = None

    def __repr__(self) -> str:
        return f"<MiningPool {self.name} share={self.hash_share:.3f}>"


class Miner:
    """Drives a pool's block production inside a network simulation.

    Uses the memorylessness of PoW: the next-block timer is sampled
    once per block and *not* restarted on chain switches; whichever tip
    the host node holds when the timer fires is extended.  That is
    statistically identical to continuous re-mining and keeps the event
    count linear in blocks found.
    """

    def __init__(self, pool: MiningPool, network: "Network", model: MiningModel) -> None:
        self.pool = pool
        self.network = network
        self.model = model
        self._running = False

    def start(self) -> None:
        """Begin the mining loop."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        delay = self.model.sample_block_time(self.pool.hash_share)
        self.network.sim.schedule(delay, self._find_block)

    def _find_block(self) -> None:
        if not self._running:
            return
        if self.pool.active:
            self._produce_block()
        self._schedule_next()

    def _produce_block(self) -> None:
        node = self.network.node(self.pool.node_id)
        if not node.online:
            return
        if self.pool.counterfeit_mode and self.pool.private_tip is not None:
            tip = self.pool.private_tip
        else:
            tip = node.tree.best_tip
        txs: List[Transaction] = [
            Transaction.make_coinbase(
                miner=self.pool.pool_id,
                value=BLOCK_REWARD,
                nonce=tip.height + 1,
            )
        ]
        if self.pool.counterfeit_mode:
            # The attacker crafts its blocks: only explicitly queued
            # transactions ride the counterfeit branch.
            txs.extend(self.pool.counterfeit_txs[:BLOCK_TX_LIMIT])
            del self.pool.counterfeit_txs[:BLOCK_TX_LIMIT]
        else:
            # Pack mempool transactions (insertion order approximates
            # fee-rate order well enough for partition experiments).
            txs.extend(list(node.mempool.values())[:BLOCK_TX_LIMIT])
        block = Block.create(
            parent_hash=tip.hash,
            height=tip.height + 1,
            miner_id=self.pool.pool_id,
            timestamp=self.network.now,
            transactions=txs,
            counterfeit=self.pool.counterfeit_mode,
        )
        self.pool.blocks_mined += 1
        if self.pool.counterfeit_mode:
            # Feed the counterfeit block to the victims only: the
            # attacker's own node stores it (so victims can backfill
            # the branch through getdata) but does not broadcast, and
            # it withholds honest-chain announcements from victims.
            self.pool.private_tip = block
            node.tree.add_block(block)
            node._known_blocks.add(block.hash)
            node.suppress_inv_to.update(self.pool.victim_ids)
            for victim in self.pool.victim_ids:
                self.network.deliver_direct(self.pool.node_id, victim, block)
        else:
            node.accept_block(block)
