"""Periodic measurement of a running network simulation.

The paper's Figure 6 is a stacked time series of consensus-lag bands
sampled every 10 minutes (and every minute for the fine-grained
variant).  :class:`LagSampler` reproduces that measurement loop inside
the simulator: at each tick it classifies every node into its lag band
and appends one row to the series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..types import LagBand, Seconds, lag_band

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

__all__ = ["LagSample", "LagSampler"]


@dataclass(frozen=True)
class LagSample:
    """One sampling tick: counts of nodes per lag band."""

    time: Seconds
    network_height: int
    counts: Dict[LagBand, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, band: LagBand) -> float:
        total = self.total
        return self.counts.get(band, 0) / total if total else 0.0

    @property
    def synced_fraction(self) -> float:
        return self.fraction(LagBand.SYNCED)

    def behind_at_least(self, blocks: int) -> int:
        """Nodes lagging >= ``blocks`` (Table V's vulnerable counts)."""
        count = 0
        for band, n in self.counts.items():
            low, _ = band.bounds
            if low >= blocks:
                count += n
        return count


class LagSampler:
    """Samples per-band node counts at a fixed interval.

    Attach to a network before running::

        sampler = LagSampler(network, interval=600.0)
        sampler.start()
        network.run_for(86_400)
        series = sampler.samples
    """

    def __init__(self, network: "Network", interval: Seconds = 600.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.interval = interval
        self.samples: List[LagSample] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.network.sim.schedule(0.0, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.samples.append(self.sample_now())
        self.network.sim.schedule(self.interval, self._tick)

    def sample_now(self) -> LagSample:
        """Take one sample immediately (without scheduling)."""
        height = self.network.network_height()
        counts: Dict[LagBand, int] = {band: 0 for band in LagBand}
        for node in self.network.nodes.values():
            if not node.online:
                continue
            counts[lag_band(node.lag(height))] += 1
        return LagSample(
            time=self.network.now,
            network_height=height,
            counts=counts,
        )

    # ------------------------------------------------------------------
    def stacked_series(self) -> Dict[LagBand, List[int]]:
        """Per-band count series in stacking order (Figure 6 layout)."""
        series: Dict[LagBand, List[int]] = {band: [] for band in LagBand.ordered()}
        for sample in self.samples:
            for band in LagBand.ordered():
                series[band].append(sample.counts.get(band, 0))
        return series

    def min_synced_fraction(self) -> Optional[float]:
        if not self.samples:
            return None
        return min(sample.synced_fraction for sample in self.samples)
