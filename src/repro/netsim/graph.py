"""Sparse-graph (CSR) propagation engine for arbitrary topologies.

:class:`GraphSimulatorVec` generalizes the vectorized grid engine's
synchronous push+pull scatter-max reconcile (see
:mod:`repro.netsim.grid`) from the fixed ``(N, 8)`` Moore neighbourhood
to compressed-sparse-row adjacency: ``indptr``/``indices`` arrays
describing an *arbitrary* directed graph, with optional per-edge delay
ticks.  Mining, fork bookkeeping, and the per-step phase structure are
shared with the grid engines through ``_GridEngineBase`` /
``_VecEngineBase``, so the same physics (Bernoulli block production,
honest/attacker hash-rate split, natural forks, longest-chain
adoption) runs on any topology the paper cares about — the square
grid, AS-level graphs built from :mod:`repro.topology`, or synthetic
degree-calibrated networks at 10^5-10^6 nodes.

Graph RNG protocol (``GraphSimulatorVec``): all draws come from the
NumPy generator of the stream named by ``GraphSpec.rng_stream``
(default ``"graph.vec"``).  Per step, the scalar mining draws happen
in exactly the vectorized grid engine's order (see the grid module
docstring); the communication phase then draws one length-N uniform
vector (failure mask) and one length-N neighbour-choice vector:
``integers(0, d, size=N)`` when every node has the same out-degree
``d`` (the degree-regular fast path), else ``integers(0, degrees)``
with the per-node degree as the bound (degree-0 nodes draw a dummy and
are masked out).  The protocol depends only on ``(config, step)``,
never on worker count or host, so graph runs are deterministic per
seed and identical under any ``jobs=N`` fan-out.

Exact-equivalence bridge: :meth:`GraphSpec.from_grid` emits the Moore
neighbourhood as CSR *in the grid engine's neighbour order* and pins
``rng_stream="grid.vec"`` plus ``grid_size`` (so honest-seed cells are
drawn as the grid's row/column pair).  A bridged grid therefore
replays the vectorized grid engine's draw sequence bit-for-bit: every
snapshot matches :class:`~repro.netsim.grid.GridSimulatorVec` exactly
(pinned by ``tests/netsim/test_graph_vec.py``).

Per-edge delays: an edge with delay ``d > 0`` delivers both the pull
offer (the partner's view to the chooser) and the push offer (the
chooser's view to the partner) ``d`` steps after the contact, carrying
the height *and fork label captured at send time*.  Matured offers
reconcile through the same scatter-max as same-step offers; ties on
the encoded ``(height, source)`` key resolve toward the
latest-enqueued batch, which is deterministic because batches are
enqueued in sorted-delay order.  Delay 0 (the default) is the grid
engines' same-step semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError
from ..rng import RngStreams
from .grid import (
    GridConfig,
    GridSimulatorVec,
    OFFER_DTYPE,
    OFFER_HEIGHT_HEADROOM,
    _VecEngineBase,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..parallel.metrics import PhaseTimingCollector

__all__ = [
    "GraphSpec",
    "GraphConfig",
    "GraphSnapshot",
    "GraphSimulatorVec",
    "graph_config_from_grid",
    "hijack_partition_mask",
    "offer_height_bound",
]


def offer_height_bound(num_nodes: int) -> int:
    """Highest mined height the offer encoding supports at this size.

    The reconcile packs offers as ``height * N + (N - 1 - source)`` in
    ``OFFER_DTYPE``; this is the largest ``height`` for which every
    source still fits.
    """
    if num_nodes <= 0:
        return 0
    max_code = int(np.iinfo(OFFER_DTYPE).max)
    return (max_code - (num_nodes - 1)) // num_nodes


def _as_index_array(values, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.int64)
    if array.ndim != 1:
        raise ConfigurationError(f"{name} must be one-dimensional", shape=array.shape)
    return array


@dataclass(eq=False)
class GraphSpec:
    """A directed graph in CSR form, plus simulation metadata.

    Attributes:
        indptr: Row pointer array of length ``num_nodes + 1``; node
            ``i``'s out-edges are ``indices[indptr[i]:indptr[i + 1]]``.
        indices: Flat destination array (one entry per edge).  The
            within-row order is part of the spec: the neighbour-choice
            draw indexes into it.
        edge_delays: Optional per-edge delay ticks (same length as
            ``indices``, non-negative).  ``None`` means every edge
            delivers in the same step, like the grid engines.
        grid_size: Set by :meth:`from_grid` — honest-seed cells are
            then drawn as a (row, column) pair, replaying the grid
            engines' two-draw protocol exactly.
        rng_stream: Name of the NumPy stream the engine draws from
            (``"graph.vec"``; the grid bridge pins ``"grid.vec"``).
        node_ids: Optional external identity per node (e.g. ASNs for
            topology-derived graphs), in node-index order.
        node_weights: Optional per-node weight (e.g. Bitcoin full
            nodes hosted per AS).
    """

    indptr: np.ndarray
    indices: np.ndarray
    edge_delays: Optional[np.ndarray] = None
    grid_size: Optional[int] = None
    rng_stream: str = "graph.vec"
    node_ids: Optional[Tuple[int, ...]] = None
    node_weights: Optional[np.ndarray] = None
    _degrees: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.indptr = _as_index_array(self.indptr, "indptr")
        self.indices = _as_index_array(self.indices, "indices")
        if self.indptr.size < 2:
            raise ConfigurationError("graph needs at least one node")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ConfigurationError(
                "indptr must span indices",
                first=int(self.indptr[0]),
                last=int(self.indptr[-1]),
                edges=int(self.indices.size),
            )
        self._degrees = np.diff(self.indptr)
        if (self._degrees < 0).any():
            raise ConfigurationError("indptr must be non-decreasing")
        num_nodes = self.num_nodes
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= num_nodes
        ):
            raise ConfigurationError(
                "edge destination out of range", num_nodes=num_nodes
            )
        if self.edge_delays is not None:
            self.edge_delays = _as_index_array(self.edge_delays, "edge_delays")
            if self.edge_delays.size != self.indices.size:
                raise ConfigurationError(
                    "one delay per edge required",
                    edges=int(self.indices.size),
                    delays=int(self.edge_delays.size),
                )
            if self.edge_delays.size and self.edge_delays.min() < 0:
                raise ConfigurationError("edge delays must be non-negative")
        if self.node_ids is not None and len(self.node_ids) != num_nodes:
            raise ConfigurationError(
                "one node id per node required",
                nodes=num_nodes,
                ids=len(self.node_ids),
            )
        if not self.rng_stream:
            raise ConfigurationError("rng_stream must be non-empty")
        height_bound = offer_height_bound(num_nodes)
        if height_bound < OFFER_HEIGHT_HEADROOM:
            raise ConfigurationError(
                f"offer-encoding headroom exhausted: at {num_nodes} nodes "
                f"the {np.dtype(OFFER_DTYPE).name} code "
                "height * N + (N - 1 - source) overflows past height "
                f"{height_bound}, below the required "
                f"{OFFER_HEIGHT_HEADROOM}-block headroom",
                num_nodes=num_nodes,
                height_bound=height_bound,
                required_headroom=OFFER_HEIGHT_HEADROOM,
            )

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree per node."""
        return self._degrees

    @property
    def regular_degree(self) -> Optional[int]:
        """The uniform out-degree, or ``None`` for irregular graphs."""
        if self.num_edges == 0:
            return None
        first = int(self._degrees[0])
        if first > 0 and bool((self._degrees == first).all()):
            return first
        return None

    # ------------------------------------------------------------------
    # Adapters
    # ------------------------------------------------------------------
    @classmethod
    def from_grid(cls, size: int) -> "GraphSpec":
        """The toroidal Moore-neighbourhood grid as CSR.

        Rows keep the grid engine's (dr, dc) neighbour enumeration
        order and the spec pins ``rng_stream="grid.vec"`` and
        ``grid_size``, making a bridged run bit-identical to
        :class:`~repro.netsim.grid.GridSimulatorVec`.
        """
        if size < 2:
            raise ConfigurationError("grid size must be >= 2", size=size)
        matrix = GridSimulatorVec._build_neighbor_matrix(size)
        num_nodes = size * size
        return cls(
            indptr=np.arange(num_nodes + 1, dtype=np.int64) * 8,
            indices=matrix.reshape(-1),
            grid_size=size,
            rng_stream="grid.vec",
        )

    @classmethod
    def from_topology(
        cls,
        topology,
        peers_per_node: int = 8,
        seed: int = 0,
    ) -> "GraphSpec":
        """AS-level graph from a :class:`~repro.topology.topology.Topology`.

        One graph node per registered AS, in **sorted ASN order** —
        construction is ordering-stable no matter what insertion order
        the dict-backed registries saw.  Each AS draws
        ``peers_per_node`` distinct peers weighted by hosted-node
        count plus one (bigger ASes are better connected, per the
        "All that Glitters is not Bitcoin" degree skew), and the edge
        set is symmetrized: announcements travel both ways over a
        peering.  ``node_ids`` carries the ASNs and ``node_weights``
        the hosted Bitcoin node counts, so BGP-hijack captures map
        back onto graph nodes (see :func:`hijack_partition_mask`).
        """
        if peers_per_node < 1:
            raise ConfigurationError(
                "peers_per_node must be >= 1", peers=peers_per_node
            )
        asns = sorted(topology.ases.asns())
        num_nodes = len(asns)
        if num_nodes < 2:
            raise ConfigurationError(
                "topology must register at least two ASes", ases=num_nodes
            )
        counts = topology.nodes_per_as()
        weights = np.array(
            [counts.get(asn, 0) for asn in asns], dtype=np.float64
        )
        rng = RngStreams(seed).numpy_stream("graph.topology")
        k = min(peers_per_node, num_nodes - 1)
        preference = weights + 1.0
        chosen: List[np.ndarray] = []
        for i in range(num_nodes):
            p = preference.copy()
            p[i] = 0.0
            p /= p.sum()
            chosen.append(np.sort(rng.choice(num_nodes, size=k, replace=False, p=p)))
        src = np.repeat(np.arange(num_nodes, dtype=np.int64), k)
        dst = np.concatenate(chosen).astype(np.int64)
        # Symmetrize, then sort and deduplicate (row-major edge order).
        a = np.concatenate([src, dst])
        b = np.concatenate([dst, src])
        order = np.lexsort((b, a))
        a, b = a[order], b[order]
        keep = np.ones(a.size, dtype=bool)
        keep[1:] = (a[1:] != a[:-1]) | (b[1:] != b[:-1])
        a, b = a[keep], b[keep]
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(a, minlength=num_nodes))
        return cls(
            indptr=indptr,
            indices=b,
            node_ids=tuple(int(asn) for asn in asns),
            node_weights=weights.astype(np.int64),
        )

    @classmethod
    def synthetic(
        cls,
        num_nodes: int,
        base_degree: int = 8,
        tail_alpha: float = 2.0,
        max_extra_degree: int = 120,
        max_delay: int = 0,
        seed: int = 0,
    ) -> "GraphSpec":
        """Degree-calibrated synthetic topology for scale runs.

        Every node gets Bitcoin's default ``base_degree`` (8) outbound
        edges plus a Pareto(``tail_alpha``) heavy tail capped at
        ``max_extra_degree`` — the measured degree skew of "All that
        Glitters is not Bitcoin" (a reachable core of well-connected
        supernodes over a thin edge).  Targets are drawn
        preferentially by degree, so high-degree nodes are also
        popular.  With ``max_delay > 0`` every edge draws a uniform
        delay in ``[0, max_delay]`` ticks, approximating the
        heterogeneous link latencies behind the Nakamoto
        latency-security model.  Construction is fully vectorized and
        deterministic per ``seed`` (streams ``"graph.synthetic"``).
        """
        if num_nodes < 2:
            raise ConfigurationError("num_nodes must be >= 2", num=num_nodes)
        if base_degree < 1:
            raise ConfigurationError("base_degree must be >= 1", base=base_degree)
        if tail_alpha <= 0:
            raise ConfigurationError("tail_alpha must be positive", alpha=tail_alpha)
        if max_delay < 0:
            raise ConfigurationError("max_delay must be >= 0", delay=max_delay)
        rng = RngStreams(seed).numpy_stream("graph.synthetic")
        extra = np.minimum(
            rng.pareto(tail_alpha, num_nodes), float(max_extra_degree)
        ).astype(np.int64)
        degrees = np.minimum(base_degree + extra, num_nodes - 1)
        total = int(degrees.sum())
        weights = degrees / float(total)
        targets = rng.choice(num_nodes, size=total, p=weights).astype(np.int64)
        src = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
        loops = targets == src
        if loops.any():
            targets[loops] = (targets[loops] + 1) % num_nodes
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(degrees)
        delays = (
            rng.integers(0, max_delay + 1, size=total) if max_delay > 0 else None
        )
        return cls(indptr=indptr, indices=targets, edge_delays=delays)

    # ------------------------------------------------------------------
    def partitioned(self, mask: Sequence[bool]) -> "GraphSpec":
        """The spec with every edge crossing ``mask`` removed.

        ``mask`` is a boolean array over nodes (True = inside the
        partition); edges whose endpoints disagree are cut, modeling a
        BGP-hijack or nation-state partition.  Node count, identity,
        and within-partition edge order are preserved.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_nodes,):
            raise ConfigurationError(
                "one mask entry per node required",
                nodes=self.num_nodes,
                mask=int(mask.size),
            )
        src = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), self._degrees
        )
        keep = mask[src] == mask[self.indices]
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(src[keep], minlength=self.num_nodes))
        return GraphSpec(
            indptr=indptr,
            indices=self.indices[keep],
            edge_delays=(
                None if self.edge_delays is None else self.edge_delays[keep]
            ),
            grid_size=self.grid_size,
            rng_stream=self.rng_stream,
            node_ids=self.node_ids,
            node_weights=self.node_weights,
        )


def hijack_partition_mask(
    spec: GraphSpec,
    topology,
    hijack,
    table,
    threshold: float = 0.5,
) -> np.ndarray:
    """Boolean node mask of ASes captured by a BGP hijack.

    For every graph node (an AS of a :meth:`GraphSpec.from_topology`
    spec), counts how many of its hosted node IPs currently route to
    the hijacker under ``table`` and marks the node when the captured
    fraction reaches ``threshold``.  The mask feeds
    :meth:`GraphSpec.partitioned`, turning a routing-layer attack from
    :mod:`repro.topology.bgp` into a propagation-layer partition.
    """
    if spec.node_ids is None:
        raise ConfigurationError(
            "spec has no node ids; build it with GraphSpec.from_topology"
        )
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError("threshold must be in (0, 1]", threshold=threshold)
    mask = np.zeros(spec.num_nodes, dtype=bool)
    for node, asn in enumerate(spec.node_ids):
        ips = topology.node_ips_in_as(asn)
        if not ips:
            continue
        captured = hijack.captured_ips(table, ips)
        mask[node] = len(captured) >= threshold * len(ips)
    return mask


@dataclass(frozen=True, eq=False)
class GraphConfig:
    """Parameters of a sparse-graph simulation.

    The simulation fields mirror :class:`~repro.netsim.grid.GridConfig`
    (per-communication failure rate, steps per expected block,
    honest/attacker hash split, natural-fork rate), with the topology
    supplied as a :class:`GraphSpec` and the attacker pinned to a node
    index instead of a grid cell.
    """

    spec: GraphSpec
    failure_rate: float = 0.10
    steps_per_block: int = 50
    attacker_share: float = 0.30
    attacker_node: int = 0
    attack_start_step: int = 0
    natural_fork_rate: float = 0.10
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ConfigurationError("failure_rate in [0,1)")
        if self.steps_per_block < 1:
            raise ConfigurationError("steps_per_block must be >= 1")
        if not 0.0 <= self.attacker_share < 1.0:
            raise ConfigurationError("attacker_share in [0,1)")
        if not 0.0 <= self.natural_fork_rate <= 1.0:
            raise ConfigurationError("natural_fork_rate in [0,1]")
        if not 0 <= self.attacker_node < self.spec.num_nodes:
            raise ConfigurationError(
                "attacker_node outside graph",
                node=self.attacker_node,
                num_nodes=self.spec.num_nodes,
            )

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes


def graph_config_from_grid(config: GridConfig) -> GraphConfig:
    """Bridge a grid config onto the graph engine (bit-identical run)."""
    row, col = config.attacker_cell
    return GraphConfig(
        spec=GraphSpec.from_grid(config.size),
        failure_rate=config.failure_rate,
        steps_per_block=config.steps_per_block,
        attacker_share=config.attacker_share,
        attacker_node=row * config.size + col,
        attack_start_step=config.attack_start_step,
        natural_fork_rate=config.natural_fork_rate,
        seed=config.seed,
    )


@dataclass(frozen=True)
class GraphSnapshot:
    """State of the graph at one step: fork label and height per node."""

    step: int
    labels: Tuple[str, ...]
    heights: Tuple[int, ...]

    def fork_fractions(self) -> Dict[str, float]:
        counts: Dict[str, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        total = len(self.labels)
        return {label: count / total for label, count in counts.items()}


class GraphSimulatorVec(_VecEngineBase):
    """CSR sparse-adjacency propagation engine.

    Mining, fork bookkeeping, and the scatter-max reconcile are shared
    with :class:`~repro.netsim.grid.GridSimulatorVec` through the
    engine bases; this class supplies CSR partner selection (see the
    module docstring for the neighbour-choice protocol), the optional
    delayed-offer queue, and flat observation views.
    """

    def __init__(
        self,
        config: GraphConfig,
        phase_metrics: Optional["PhaseTimingCollector"] = None,
    ) -> None:
        spec = config.spec
        self.spec = spec
        # The stream name is part of the spec so the grid bridge can
        # replay the "grid.vec" draw sequence; set it before the base
        # constructs the generator.
        self.RNG_STREAM = spec.rng_stream
        super().__init__(config, phase_metrics)
        self._indptr = spec.indptr
        self._indices = spec.indices
        self._num_edges = spec.num_edges
        self._row_start = spec.indptr[:-1]
        self._degrees = spec.degrees
        self._regular_degree = spec.regular_degree
        self._choice_high = np.maximum(self._degrees, 1)
        self._active = self._degrees > 0
        self._edge_delays = spec.edge_delays
        if self._edge_delays is not None and not self._edge_delays.any():
            self._edge_delays = None  # all-zero delays: same-step path
        # arrival step -> [(dest, src, height-at-send, label-at-send)]
        self._pending: Dict[int, List[Tuple[np.ndarray, ...]]] = {}

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def _attacker_index(self, config) -> int:
        return config.attacker_node

    def _random_seed_cell(self) -> int:
        grid_size = self.spec.grid_size
        if grid_size is not None:
            # Grid bridge: replay the two-draw row/column protocol.
            row = self._rand_below(grid_size)
            col = self._rand_below(grid_size)
            return row * grid_size + col
        return self._rand_below(self._num_nodes)

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def _draw_choices(self) -> np.ndarray:
        degree = self._regular_degree
        if degree is not None:
            return self._rng.integers(0, degree, size=self._num_nodes)
        return self._rng.integers(0, self._choice_high)

    def _communicate(self) -> None:
        """One synchronous CSR communication step.

        Draw order (failure mask, then neighbour choice) matches the
        grid kernel; partner lookup walks the CSR row instead of the
        fixed matrix.  Zero-delay offers reconcile through the shared
        scatter-max; delayed offers are enqueued with their
        at-send-time view and delivered when they mature.
        """
        rng = self._rng
        num_nodes = self._num_nodes
        fail = rng.random(num_nodes) < self.config.failure_rate
        choice = self._draw_choices()
        if self._num_edges == 0:
            return  # draws above keep the per-step protocol uniform
        edge = np.minimum(self._row_start + choice, self._num_edges - 1)
        partner = self._indices[edge]
        ok = ~fail & self._active
        if self._edge_delays is None:
            self._adopt_from(self._push_pull_best(ok, partner))
            return
        delay = np.where(ok, self._edge_delays[edge], 0)
        delayed = delay > 0
        if delayed.any():
            self._enqueue_delayed(np.flatnonzero(delayed), partner, delay)
        best = self._push_pull_best(ok & ~delayed, partner)
        matured = self._pending.pop(self.step_count, None)
        if matured is None:
            self._adopt_from(best)
            return
        for dest, src, height, _ in matured:
            np.maximum.at(
                best, dest, height * num_nodes + (num_nodes - 1 - src)
            )
        self._adopt_with_sent_labels(best, matured)

    def _enqueue_delayed(
        self, senders: np.ndarray, partner: np.ndarray, delay: np.ndarray
    ) -> None:
        """Queue both offer directions with the current (at-send) view."""
        heights = self._hgt
        labels = self._lab
        sender_delay = delay[senders]
        for ticks in np.unique(sender_delay):  # repro-lint: disable=RPL311 iterates distinct delay values (small, bounded by the delay distribution), not nodes
            sel = senders[sender_delay == ticks]
            other = partner[sel]
            bucket = self._pending.setdefault(self.step_count + int(ticks), [])
            # Pull: the partner's view reaches the chooser.
            bucket.append((sel, other, heights[other], labels[other]))
            # Push: the chooser's view reaches the partner.
            bucket.append((other, sel, heights[sel], labels[sel]))

    def _adopt_with_sent_labels(
        self, best: np.ndarray, matured: List[Tuple[np.ndarray, ...]]
    ) -> None:
        """Adopt best offers, restoring at-send labels for matured wins."""
        num_nodes = self._num_nodes
        heights = self._hgt
        new_height = best // num_nodes
        adopt = new_height > heights
        if self.attacker_fork is not None:
            adopt[self._attacker_idx] = False  # pinned
        if not adopt.any():
            return
        source = num_nodes - 1 - (best % num_nodes)
        new_label = self._lab[source]
        for dest, src, height, label in matured:
            won = (height * num_nodes + (num_nodes - 1 - src)) == best[dest]
            if won.any():
                new_label[dest[won]] = label[won]
        self._lab[adopt] = new_label[adopt]
        self._hgt[adopt] = new_height[adopt]

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def labels(self) -> List[str]:
        """Per-node fork labels, in node-index order."""
        id_labels = self._id_labels
        return [id_labels[i] for i in self._lab.tolist()]

    @property
    def heights(self) -> List[int]:
        """Per-node chain heights, in node-index order."""
        return self._hgt.tolist()

    def snapshot(self) -> GraphSnapshot:
        return GraphSnapshot(
            step=self.step_count,
            labels=tuple(self.labels),
            heights=tuple(self.heights),
        )

    def partition_fractions(self, mask: Sequence[bool]) -> Dict[str, float]:
        """Fork fractions restricted to the masked nodes."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._num_nodes,):
            raise ConfigurationError(
                "one mask entry per node required",
                nodes=self._num_nodes,
                mask=int(mask.size),
            )
        total = int(mask.sum())
        if total == 0:
            return {}
        counts = np.bincount(self._lab[mask], minlength=len(self._id_labels))
        return {
            self._id_labels[i]: int(counts[i]) / total
            for i in np.flatnonzero(counts).tolist()
        }
