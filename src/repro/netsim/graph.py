"""Sparse-graph (CSR) propagation engine for arbitrary topologies.

:class:`GraphSimulatorVec` generalizes the vectorized grid engine's
synchronous push+pull scatter-max reconcile (see
:mod:`repro.netsim.grid`) from the fixed ``(N, 8)`` Moore neighbourhood
to compressed-sparse-row adjacency: ``indptr``/``indices`` arrays
describing an *arbitrary* directed graph, with optional per-edge delay
ticks.  Mining, fork bookkeeping, and the per-step phase structure are
shared with the grid engines through ``_GridEngineBase`` /
``_VecEngineBase``, so the same physics (Bernoulli block production,
honest/attacker hash-rate split, natural forks, longest-chain
adoption) runs on any topology the paper cares about — the square
grid, AS-level graphs built from :mod:`repro.topology`, or synthetic
degree-calibrated networks at 10^5-10^6 nodes.

Graph RNG protocol (``GraphSimulatorVec``): all draws come from the
NumPy generator of the stream named by ``GraphSpec.rng_stream``
(default ``"graph.vec"``).  Per step, the scalar mining draws happen
in exactly the vectorized grid engine's order (see the grid module
docstring); the communication phase then draws one length-N uniform
vector (failure mask) and one length-N neighbour-choice vector:
``integers(0, d, size=N)`` when every node has the same out-degree
``d`` (the degree-regular fast path), else ``integers(0, degrees)``
with the per-node degree as the bound (degree-0 nodes draw a dummy and
are masked out).  The protocol depends only on ``(config, step)``,
never on worker count or host, so graph runs are deterministic per
seed and identical under any ``jobs=N`` fan-out.

RNG protocol v2 (``GraphSpec.rng_protocol = 2``): the communication
draws above are the protocol-1 cost floor — ``Generator.integers``
with an array bound has no ``out=`` and runs Lemire rejection per
element, ~20 ms/step at 10^6 nodes.  Protocol 2 replaces them with
*one* length-N float32 uniform vector filled into a preallocated
buffer (``Generator.random(out=u, dtype=float32)``) that drives both
decisions: ``u < failure_rate`` gates failures, and for the survivors
the conditional uniform ``(u - failure_rate) / (1 - failure_rate)``
picks the neighbour (``floor(v * degree)``, clamped to
``[0, degree - 1]`` — the clamp also disposes of the negative values
failed contacts produce, which are masked out anyway).  Protocol 2
also *fast-forwards quiesced steps*: when every non-pinned node sits
at the global maximum height no offer can adopt, so the step draws
nothing (see ``GraphSimulatorVec._comm_quiesced``; the skip is
state-identical to a full step and deterministic, so it is simply
part of the versioned draw sequence).  Mining draws are unchanged.
Because the draw sequence differs, protocol 2 is an
*explicitly versioned stream*: the engine appends ``".p2"`` to
``rng_stream``, so protocol-1 trajectories (and every golden) are
untouched, and a protocol-2 run can never silently replay protocol-1
draws.  The two protocols agree statistically (pinned by the
equivalence tests), not draw-by-draw.  The grid bridge
(``grid_size``) requires protocol 1.

Reconcile kernels: ``GraphSimulatorVec(config, kernel="edge")`` (the
default) runs the edge-parallel batched reconcile — offers are
destination-grouped through one indexed max-reduce pass over the
step's contact batch, with every intermediate (failure mask, partner
gather, offer codes, best-offer table, adoption mask) written into
preallocated buffers, and offer codes adaptively rebased to int32 when
the step's height spread fits (halving gather/scatter traffic).
``kernel="scatter"`` preserves the historical allocating scatter-max
dataflow as a benchmark baseline.  Both kernels consume identical
draws and produce bit-identical trajectories (pinned by the
cross-kernel suite); an explicit argsort/segment-reduce variant was
benchmarked ~30x slower than the indexed max-reduce on NumPy >= 2.x
and rejected.

Exact-equivalence bridge: :meth:`GraphSpec.from_grid` emits the Moore
neighbourhood as CSR *in the grid engine's neighbour order* and pins
``rng_stream="grid.vec"`` plus ``grid_size`` (so honest-seed cells are
drawn as the grid's row/column pair).  A bridged grid therefore
replays the vectorized grid engine's draw sequence bit-for-bit: every
snapshot matches :class:`~repro.netsim.grid.GridSimulatorVec` exactly
(pinned by ``tests/netsim/test_graph_vec.py``).

Per-edge delays: an edge with delay ``d > 0`` delivers both the pull
offer (the partner's view to the chooser) and the push offer (the
chooser's view to the partner) ``d`` steps after the contact, carrying
the height *and fork label captured at send time*.  Matured offers
reconcile through the same max-reduce as same-step offers; ties on the
encoded ``(height, source)`` key resolve toward the latest-enqueued
batch.  That tie-break is *observationally order-independent*: two
queued offers can only tie when they carry the same ``(height,
source)``, and a node's label cannot change without its height
changing, so tied offers always carry the same label (pinned by the
maturation-permutation property test).  Delay 0 (the default) is the
grid engines' same-step semantics.

The edge kernel stores queued offers in a preallocated flat store of
arrays (destination, source, height, label, arrival step), appended
per step and compacted on maturation, so delivery is one vectorized
merge; the total queue is bounded by ``2 * N * max_delay`` entries
(pinned under Hypothesis).  The scatter kernel keeps the historical
dict-of-batches queue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..rng import RngStreams
from .grid import (
    GridConfig,
    GridSimulatorVec,
    OFFER_DTYPE,
    OFFER_HEIGHT_HEADROOM,
    _VecEngineBase,
    offer_source_bits,
    span_ratio_delay,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..parallel.metrics import PhaseTimingCollector
    from .latency import EmpiricalLatency

__all__ = [
    "GRAPH_KERNELS",
    "GraphSpec",
    "GraphConfig",
    "GraphSnapshot",
    "GraphSimulatorVec",
    "graph_config_from_grid",
    "hijack_partition_mask",
    "offer_height_bound",
]

#: Accepted reconcile kernels: ``"edge"`` is the buffered edge-parallel
#: batched reconcile (the default), ``"scatter"`` the historical
#: allocating scatter-max, kept as a bit-identical benchmark baseline.
GRAPH_KERNELS = ("edge", "scatter")

#: Accepted ``GraphSpec.rng_protocol`` values (see the module
#: docstring; 2 is the versioned fast-draw stream).
RNG_PROTOCOLS = (1, 2)


def offer_height_bound(num_nodes: int) -> int:
    """Highest mined height the offer encoding supports at this size.

    The reconcile packs offers as
    ``(height << offer_source_bits(N)) | (N - 1 - source)`` in
    ``OFFER_DTYPE``; this is the largest ``height`` for which the
    shifted code still fits.
    """
    if num_nodes <= 0:
        return 0
    max_code = int(np.iinfo(OFFER_DTYPE).max)
    return max_code >> offer_source_bits(num_nodes)


def _as_index_array(values, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.int64)
    if array.ndim != 1:
        raise ConfigurationError(f"{name} must be one-dimensional", shape=array.shape)
    return array


@dataclass(eq=False)
class GraphSpec:
    """A directed graph in CSR form, plus simulation metadata.

    Attributes:
        indptr: Row pointer array of length ``num_nodes + 1``; node
            ``i``'s out-edges are ``indices[indptr[i]:indptr[i + 1]]``.
        indices: Flat destination array (one entry per edge).  The
            within-row order is part of the spec: the neighbour-choice
            draw indexes into it.
        edge_delays: Optional per-edge delay ticks (same length as
            ``indices``, non-negative).  ``None`` means every edge
            delivers in the same step, like the grid engines.
        grid_size: Set by :meth:`from_grid` — honest-seed cells are
            then drawn as a (row, column) pair, replaying the grid
            engines' two-draw protocol exactly.
        rng_stream: Name of the NumPy stream the engine draws from
            (``"graph.vec"``; the grid bridge pins ``"grid.vec"``).
        node_ids: Optional external identity per node (e.g. ASNs for
            topology-derived graphs), in node-index order.
        node_weights: Optional per-node weight (e.g. Bitcoin full
            nodes hosted per AS).
        rng_protocol: Communication draw protocol: 1 (the historical
            draws, default) or 2 (buffered float32 fast draws under
            the versioned ``rng_stream + ".p2"`` stream; see the
            module docstring).  The grid bridge requires protocol 1.
    """

    indptr: np.ndarray
    indices: np.ndarray
    edge_delays: Optional[np.ndarray] = None
    grid_size: Optional[int] = None
    rng_stream: str = "graph.vec"
    node_ids: Optional[Tuple[int, ...]] = None
    node_weights: Optional[np.ndarray] = None
    rng_protocol: int = 1
    _degrees: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.indptr = _as_index_array(self.indptr, "indptr")
        self.indices = _as_index_array(self.indices, "indices")
        if self.indptr.size < 2:
            raise ConfigurationError("graph needs at least one node")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ConfigurationError(
                "indptr must span indices",
                first=int(self.indptr[0]),
                last=int(self.indptr[-1]),
                edges=int(self.indices.size),
            )
        self._degrees = np.diff(self.indptr)
        if (self._degrees < 0).any():
            raise ConfigurationError("indptr must be non-decreasing")
        num_nodes = self.num_nodes
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= num_nodes
        ):
            raise ConfigurationError(
                "edge destination out of range", num_nodes=num_nodes
            )
        if self.edge_delays is not None:
            self.edge_delays = _as_index_array(self.edge_delays, "edge_delays")
            if self.edge_delays.size != self.indices.size:
                raise ConfigurationError(
                    "one delay per edge required",
                    edges=int(self.indices.size),
                    delays=int(self.edge_delays.size),
                )
            if self.edge_delays.size and self.edge_delays.min() < 0:
                raise ConfigurationError("edge delays must be non-negative")
        if self.node_ids is not None and len(self.node_ids) != num_nodes:
            raise ConfigurationError(
                "one node id per node required",
                nodes=num_nodes,
                ids=len(self.node_ids),
            )
        if not self.rng_stream:
            raise ConfigurationError("rng_stream must be non-empty")
        if self.rng_protocol not in RNG_PROTOCOLS:
            raise ConfigurationError(
                "unknown rng_protocol",
                protocol=self.rng_protocol,
                choices=RNG_PROTOCOLS,
            )
        if self.rng_protocol != 1 and self.grid_size is not None:
            raise ConfigurationError(
                "the grid bridge replays the grid engine's draw "
                "sequence and therefore requires rng_protocol 1",
                protocol=self.rng_protocol,
            )
        height_bound = offer_height_bound(num_nodes)
        if height_bound < OFFER_HEIGHT_HEADROOM:
            raise ConfigurationError(
                f"offer-encoding headroom exhausted: at {num_nodes} nodes "
                f"the {np.dtype(OFFER_DTYPE).name} code "
                "(height << source_bits) | (N - 1 - source) overflows "
                f"past height {height_bound}, below the required "
                f"{OFFER_HEIGHT_HEADROOM}-block headroom",
                num_nodes=num_nodes,
                height_bound=height_bound,
                required_headroom=OFFER_HEIGHT_HEADROOM,
            )

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree per node."""
        return self._degrees

    @property
    def regular_degree(self) -> Optional[int]:
        """The uniform out-degree, or ``None`` for irregular graphs."""
        if self.num_edges == 0:
            return None
        first = int(self._degrees[0])
        if first > 0 and bool((self._degrees == first).all()):
            return first
        return None

    # ------------------------------------------------------------------
    # Adapters
    # ------------------------------------------------------------------
    @classmethod
    def from_grid(cls, size: int) -> "GraphSpec":
        """The toroidal Moore-neighbourhood grid as CSR.

        Rows keep the grid engine's (dr, dc) neighbour enumeration
        order and the spec pins ``rng_stream="grid.vec"`` and
        ``grid_size``, making a bridged run bit-identical to
        :class:`~repro.netsim.grid.GridSimulatorVec`.
        """
        if size < 2:
            raise ConfigurationError("grid size must be >= 2", size=size)
        matrix = GridSimulatorVec._build_neighbor_matrix(size)
        num_nodes = size * size
        return cls(
            indptr=np.arange(num_nodes + 1, dtype=np.int64) * 8,
            indices=matrix.reshape(-1),
            grid_size=size,
            rng_stream="grid.vec",
        )

    @classmethod
    def from_topology(
        cls,
        topology,
        peers_per_node: int = 8,
        seed: int = 0,
        delay_model: Optional["EmpiricalLatency"] = None,
        tick_seconds: Optional[float] = None,
    ) -> "GraphSpec":
        """AS-level graph from a :class:`~repro.topology.topology.Topology`.

        One graph node per registered AS, in **sorted ASN order** —
        construction is ordering-stable no matter what insertion order
        the dict-backed registries saw.  Each AS draws
        ``peers_per_node`` distinct peers weighted by hosted-node
        count plus one (bigger ASes are better connected, per the
        "All that Glitters is not Bitcoin" degree skew), and the edge
        set is symmetrized: announcements travel both ways over a
        peering.  ``node_ids`` carries the ASNs and ``node_weights``
        the hosted Bitcoin node counts, so BGP-hijack captures map
        back onto graph nodes (see :func:`hijack_partition_mask`).

        With ``delay_model`` (an
        :class:`~repro.netsim.latency.EmpiricalLatency`), every
        directed edge draws a propagation delay from the calibrated
        distribution, quantized to ticks of ``tick_seconds`` (default:
        the span-ratio tick for this node count) — see
        :meth:`with_delay_model`.
        """
        if peers_per_node < 1:
            raise ConfigurationError(
                "peers_per_node must be >= 1", peers=peers_per_node
            )
        asns = sorted(topology.ases.asns())
        num_nodes = len(asns)
        if num_nodes < 2:
            raise ConfigurationError(
                "topology must register at least two ASes", ases=num_nodes
            )
        counts = topology.nodes_per_as()
        weights = np.array(
            [counts.get(asn, 0) for asn in asns], dtype=np.float64
        )
        rng = RngStreams(seed).numpy_stream("graph.topology")
        k = min(peers_per_node, num_nodes - 1)
        preference = weights + 1.0
        chosen: List[np.ndarray] = []
        for i in range(num_nodes):
            p = preference.copy()
            p[i] = 0.0
            p /= p.sum()
            chosen.append(np.sort(rng.choice(num_nodes, size=k, replace=False, p=p)))
        src = np.repeat(np.arange(num_nodes, dtype=np.int64), k)
        dst = np.concatenate(chosen).astype(np.int64)
        # Symmetrize, then sort and deduplicate (row-major edge order).
        a = np.concatenate([src, dst])
        b = np.concatenate([dst, src])
        order = np.lexsort((b, a))
        a, b = a[order], b[order]
        keep = np.ones(a.size, dtype=bool)
        keep[1:] = (a[1:] != a[:-1]) | (b[1:] != b[:-1])
        a, b = a[keep], b[keep]
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(a, minlength=num_nodes))
        spec = cls(
            indptr=indptr,
            indices=b,
            node_ids=tuple(int(asn) for asn in asns),
            node_weights=weights.astype(np.int64),
        )
        if delay_model is not None:
            spec = spec.with_delay_model(
                delay_model, tick_seconds=tick_seconds, seed=seed
            )
        return spec

    @classmethod
    def power_law(
        cls,
        num_nodes: int,
        base_degree: int = 8,
        tail_alpha: float = 2.0,
        max_extra_degree: int = 120,
        max_delay: int = 0,
        seed: int = 0,
        delay_model: Optional["EmpiricalLatency"] = None,
        tick_seconds: Optional[float] = None,
        rng_protocol: int = 1,
    ) -> "GraphSpec":
        """Degree-calibrated power-law topology for scale runs.

        Every node gets Bitcoin's default ``base_degree`` (8) outbound
        edges plus a Pareto(``tail_alpha``) heavy tail capped at
        ``max_extra_degree`` — the measured degree skew of "All that
        Glitters is not Bitcoin" (a reachable core of well-connected
        supernodes over a thin edge).  Targets are drawn
        preferentially by degree, so high-degree nodes are also
        popular.  Construction is fully vectorized and deterministic
        per ``seed`` (streams ``"graph.synthetic"``).

        Delays, one of:

        - ``max_delay > 0``: every edge draws a uniform delay in
          ``[0, max_delay]`` ticks (the historical synthetic knob);
        - ``delay_model``: every edge draws from the calibrated
          empirical propagation-delay distribution
          (:class:`~repro.netsim.latency.EmpiricalLatency`), quantized
          to ticks of ``tick_seconds`` — default the span-ratio tick
          ``span_ratio_delay(num_nodes)`` — via
          :meth:`with_delay_model`.

        ``rng_protocol=2`` selects the versioned fast-draw
        communication protocol (see the module docstring), the
        recommended setting at 10^5 nodes and beyond.
        """
        if num_nodes < 2:
            raise ConfigurationError("num_nodes must be >= 2", num=num_nodes)
        if base_degree < 1:
            raise ConfigurationError("base_degree must be >= 1", base=base_degree)
        if tail_alpha <= 0:
            raise ConfigurationError("tail_alpha must be positive", alpha=tail_alpha)
        if max_delay < 0:
            raise ConfigurationError("max_delay must be >= 0", delay=max_delay)
        if max_delay > 0 and delay_model is not None:
            raise ConfigurationError(
                "max_delay and delay_model are mutually exclusive delay "
                "sources",
                max_delay=max_delay,
            )
        rng = RngStreams(seed).numpy_stream("graph.synthetic")
        extra = np.minimum(
            rng.pareto(tail_alpha, num_nodes), float(max_extra_degree)
        ).astype(np.int64)
        degrees = np.minimum(base_degree + extra, num_nodes - 1)
        total = int(degrees.sum())
        weights = degrees / float(total)
        targets = rng.choice(num_nodes, size=total, p=weights).astype(np.int64)
        src = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
        loops = targets == src
        if loops.any():
            targets[loops] = (targets[loops] + 1) % num_nodes
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(degrees)
        delays = (
            rng.integers(0, max_delay + 1, size=total) if max_delay > 0 else None
        )
        spec = cls(
            indptr=indptr,
            indices=targets,
            edge_delays=delays,
            rng_protocol=rng_protocol,
        )
        if delay_model is not None:
            spec = spec.with_delay_model(
                delay_model, tick_seconds=tick_seconds, seed=seed
            )
        return spec

    @classmethod
    def synthetic(
        cls,
        num_nodes: int,
        base_degree: int = 8,
        tail_alpha: float = 2.0,
        max_extra_degree: int = 120,
        max_delay: int = 0,
        seed: int = 0,
    ) -> "GraphSpec":
        """Historical name for :meth:`power_law` (same draws, same spec)."""
        return cls.power_law(
            num_nodes,
            base_degree=base_degree,
            tail_alpha=tail_alpha,
            max_extra_degree=max_extra_degree,
            max_delay=max_delay,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def with_delay_model(
        self,
        delay_model: "EmpiricalLatency",
        tick_seconds: Optional[float] = None,
        seed: int = 0,
    ) -> "GraphSpec":
        """The spec with per-edge delays drawn from ``delay_model``.

        Every directed edge samples one propagation delay from the
        calibrated empirical CDF and quantizes it to ticks of
        ``tick_seconds`` (default: the span-ratio tick
        ``span_ratio_delay(num_nodes)``, the engine's per-step wall
        time).  Sampling streams ``"graph.delay"`` under ``seed``, so
        the delay assignment is deterministic and independent of the
        topology draws.  Node identity, edge order, and the RNG
        protocol are preserved.
        """
        if tick_seconds is None:
            tick_seconds = span_ratio_delay(self.num_nodes)
        rng = RngStreams(seed).numpy_stream("graph.delay")
        ticks = delay_model.sample_edge_ticks(
            rng, self.num_edges, tick_seconds=tick_seconds
        )
        return GraphSpec(
            indptr=self.indptr,
            indices=self.indices,
            edge_delays=ticks,
            grid_size=self.grid_size,
            rng_stream=self.rng_stream,
            node_ids=self.node_ids,
            node_weights=self.node_weights,
            rng_protocol=self.rng_protocol,
        )

    # ------------------------------------------------------------------
    def unreachable(self, mask: Sequence[bool]) -> "GraphSpec":
        """The spec with the masked nodes made unreachable.

        An unreachable peer (NATed / firewalled, the overwhelming
        majority of the network per the paper's §III measurement)
        still dials out but accepts no inbound connections: edges
        *from* masked nodes survive, edges *to* them are removed.
        Node count, identity, and surviving edge order are preserved.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_nodes,):
            raise ConfigurationError(
                "one mask entry per node required",
                nodes=self.num_nodes,
                mask=int(mask.size),
            )
        keep = ~mask[self.indices]
        src = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), self._degrees
        )
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(src[keep], minlength=self.num_nodes))
        return GraphSpec(
            indptr=indptr,
            indices=self.indices[keep],
            edge_delays=(
                None if self.edge_delays is None else self.edge_delays[keep]
            ),
            grid_size=self.grid_size,
            rng_stream=self.rng_stream,
            node_ids=self.node_ids,
            node_weights=self.node_weights,
            rng_protocol=self.rng_protocol,
        )

    def partitioned(self, mask: Sequence[bool]) -> "GraphSpec":
        """The spec with every edge crossing ``mask`` removed.

        ``mask`` is a boolean array over nodes (True = inside the
        partition); edges whose endpoints disagree are cut, modeling a
        BGP-hijack or nation-state partition.  Node count, identity,
        and within-partition edge order are preserved.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_nodes,):
            raise ConfigurationError(
                "one mask entry per node required",
                nodes=self.num_nodes,
                mask=int(mask.size),
            )
        src = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), self._degrees
        )
        keep = mask[src] == mask[self.indices]
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(src[keep], minlength=self.num_nodes))
        return GraphSpec(
            indptr=indptr,
            indices=self.indices[keep],
            edge_delays=(
                None if self.edge_delays is None else self.edge_delays[keep]
            ),
            grid_size=self.grid_size,
            rng_stream=self.rng_stream,
            node_ids=self.node_ids,
            node_weights=self.node_weights,
            rng_protocol=self.rng_protocol,
        )


def hijack_partition_mask(
    spec: GraphSpec,
    topology,
    hijack,
    table,
    threshold: float = 0.5,
) -> np.ndarray:
    """Boolean node mask of ASes captured by a BGP hijack.

    For every graph node (an AS of a :meth:`GraphSpec.from_topology`
    spec), counts how many of its hosted node IPs currently route to
    the hijacker under ``table`` and marks the node when the captured
    fraction reaches ``threshold``.  The mask feeds
    :meth:`GraphSpec.partitioned`, turning a routing-layer attack from
    :mod:`repro.topology.bgp` into a propagation-layer partition.
    """
    if spec.node_ids is None:
        raise ConfigurationError(
            "spec has no node ids; build it with GraphSpec.from_topology"
        )
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError("threshold must be in (0, 1]", threshold=threshold)
    mask = np.zeros(spec.num_nodes, dtype=bool)
    for node, asn in enumerate(spec.node_ids):
        ips = topology.node_ips_in_as(asn)
        if not ips:
            continue
        captured = hijack.captured_ips(table, ips)
        mask[node] = len(captured) >= threshold * len(ips)
    return mask


@dataclass(frozen=True, eq=False)
class GraphConfig:
    """Parameters of a sparse-graph simulation.

    The simulation fields mirror :class:`~repro.netsim.grid.GridConfig`
    (per-communication failure rate, steps per expected block,
    honest/attacker hash split, natural-fork rate), with the topology
    supplied as a :class:`GraphSpec` and the attacker pinned to a node
    index instead of a grid cell.
    """

    spec: GraphSpec
    failure_rate: float = 0.10
    steps_per_block: int = 50
    attacker_share: float = 0.30
    attacker_node: int = 0
    attack_start_step: int = 0
    natural_fork_rate: float = 0.10
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ConfigurationError("failure_rate in [0,1)")
        if self.steps_per_block < 1:
            raise ConfigurationError("steps_per_block must be >= 1")
        if not 0.0 <= self.attacker_share < 1.0:
            raise ConfigurationError("attacker_share in [0,1)")
        if not 0.0 <= self.natural_fork_rate <= 1.0:
            raise ConfigurationError("natural_fork_rate in [0,1]")
        if not 0 <= self.attacker_node < self.spec.num_nodes:
            raise ConfigurationError(
                "attacker_node outside graph",
                node=self.attacker_node,
                num_nodes=self.spec.num_nodes,
            )

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes


def graph_config_from_grid(config: GridConfig) -> GraphConfig:
    """Bridge a grid config onto the graph engine (bit-identical run)."""
    row, col = config.attacker_cell
    return GraphConfig(
        spec=GraphSpec.from_grid(config.size),
        failure_rate=config.failure_rate,
        steps_per_block=config.steps_per_block,
        attacker_share=config.attacker_share,
        attacker_node=row * config.size + col,
        attack_start_step=config.attack_start_step,
        natural_fork_rate=config.natural_fork_rate,
        seed=config.seed,
    )


@dataclass(frozen=True)
class GraphSnapshot:
    """State of the graph at one step: fork label and height per node."""

    step: int
    labels: Tuple[str, ...]
    heights: Tuple[int, ...]

    def fork_fractions(self) -> Dict[str, float]:
        counts: Dict[str, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        total = len(self.labels)
        return {label: count / total for label, count in counts.items()}


class _PhaseLapper:
    """Records wall-clock laps between communicate sub-phases."""

    __slots__ = ("_metrics", "_last")

    def __init__(self, metrics: "PhaseTimingCollector") -> None:
        self._metrics = metrics
        self._last = time.perf_counter()

    def lap(self, phase: str) -> None:
        now = time.perf_counter()
        self._metrics.add(phase, now - self._last)
        self._last = now


class _DelayedOfferStore:
    """Flat preallocated store of in-flight delayed offers.

    One set of parallel arrays (destination, source, height-at-send,
    label-at-send, arrival step) holds every queued offer; a step's
    enqueue is one slice append (growing geometrically, never
    shrinking) and maturation is one mask-select plus compaction, so
    both directions of the delay path are single vectorized merges.
    Append order is preserved, which keeps the matured-offer tie-break
    identical to the historical per-bucket queue.

    The store is bounded under stepped operation: each step enqueues
    at most ``2 * N`` offers (one pull and one push per successful
    delayed contact) and every offer matures within ``max_delay``
    steps of its send, so a stepping run's live count never exceeds
    ``2 * N * max_delay`` (= :attr:`bound`, pinned under Hypothesis).
    Direct repeated ``_communicate()`` calls at a frozen step count
    can exceed it — nothing matures while the clock stands still — so
    the bound is documented and tested rather than enforced inline.
    """

    __slots__ = ("_dest", "_src", "_hgt", "_lab", "_arrive", "_count", "bound")

    def __init__(self, index_dtype, bound: int) -> None:
        self._dest = np.empty(0, dtype=index_dtype)
        self._src = np.empty(0, dtype=index_dtype)
        self._hgt = np.empty(0, dtype=OFFER_DTYPE)
        self._lab = np.empty(0, dtype=np.int16)
        self._arrive = np.empty(0, dtype=np.int64)
        self._count = 0
        self.bound = bound

    @property
    def count(self) -> int:
        """Number of offers currently in flight."""
        return self._count

    @property
    def capacity(self) -> int:
        """Allocated entry capacity (grows geometrically)."""
        return int(self._dest.size)

    def append(self, dest, src, hgt, lab, arrive) -> None:
        need = self._count + dest.size
        if need > self._dest.size:
            cap = max(1024, 2 * self._dest.size, need)
            for name in ("_dest", "_src", "_hgt", "_lab", "_arrive"):
                old = getattr(self, name)
                grown = np.empty(cap, dtype=old.dtype)
                grown[: self._count] = old[: self._count]
                setattr(self, name, grown)
        sl = slice(self._count, need)
        self._dest[sl] = dest
        self._src[sl] = src
        self._hgt[sl] = hgt
        self._lab[sl] = lab
        self._arrive[sl] = arrive
        self._count = need

    def pop(self, step: int) -> Optional[Tuple[np.ndarray, ...]]:
        """Extract and remove every offer arriving at ``step``."""
        count = self._count
        if count == 0:
            return None
        mature = self._arrive[:count] == step
        if not mature.any():
            return None
        matured = (
            self._dest[:count][mature],
            self._src[:count][mature],
            self._hgt[:count][mature],
            self._lab[:count][mature],
        )
        keep = ~mature
        remaining = int(np.count_nonzero(keep))
        if remaining:
            for name in ("_dest", "_src", "_hgt", "_lab", "_arrive"):
                array = getattr(self, name)
                array[:remaining] = array[:count][keep]
        self._count = remaining
        return matured


class GraphSimulatorVec(_VecEngineBase):
    """CSR sparse-adjacency propagation engine.

    Mining, fork bookkeeping, and the max-reduce reconcile semantics
    are shared with :class:`~repro.netsim.grid.GridSimulatorVec`
    through the engine bases; this class supplies CSR partner
    selection (see the module docstring for the neighbour-choice
    protocols), the reconcile kernels (``kernel="edge"`` — buffered
    edge-parallel batched reconcile, the default — or ``"scatter"``,
    the historical allocating baseline; bit-identical), the
    delayed-offer queue, and flat observation views.
    """

    #: Running upper bound on the global chain height.  Heights only
    #: grow through ``_set_cell`` (mining / fork seeding); adoption
    #: copies an existing height.  While the bound fits the absolute
    #: int32 code window the reconcile skips its min/max rebase scans.
    _hmax_track = 0

    #: Whether ``_code32`` / ``_h32`` currently mirror
    #: ``(hgt << bits) | rev`` and ``hgt`` with base 0.  Maintained
    #: incrementally at the height-mutation sites (``_set_cell`` and
    #: the edge kernel's adopt commit) so the reconcile's full
    #: re-encode pass is skipped on steady steps and the adoption mask
    #: is an int32 compare.
    _codes_valid = False

    def __init__(
        self,
        config: GraphConfig,
        phase_metrics: Optional["PhaseTimingCollector"] = None,
        kernel: str = "edge",
    ) -> None:
        if kernel not in GRAPH_KERNELS:
            raise ConfigurationError(
                "unknown reconcile kernel", kernel=kernel, choices=GRAPH_KERNELS
            )
        spec = config.spec
        self.spec = spec
        #: The unpartitioned topology; timeline partition events derive
        #: the active edge set from it (see ``_apply_partition_fraction``).
        self._base_spec = spec
        self.kernel = kernel
        self._protocol = spec.rng_protocol
        # The stream name is part of the spec so the grid bridge can
        # replay the "grid.vec" draw sequence; set it before the base
        # constructs the generator.  Protocol 2 draws a different
        # sequence, so it gets an explicitly versioned stream name.
        self.RNG_STREAM = (
            spec.rng_stream if self._protocol == 1 else spec.rng_stream + ".p2"
        )
        super().__init__(config, phase_metrics)
        num_nodes = self._num_nodes
        # Whether this run carries per-edge delays at all.  Decided
        # once from the base spec: a partition may cut every delayed
        # edge, but in-flight offers still mature, so the delay
        # machinery (store, buffers) must keep running once it exists.
        base_delays = spec.edge_delays
        self._has_delay_path = bool(
            base_delays is not None and base_delays.any()
        )
        # Compressed index dtype: int32 indices halve gather/scatter
        # memory traffic whenever node and edge counts allow.  Sized
        # for the base spec; partitions only shrink the edge set.
        compact = max(num_nodes, spec.num_edges) < 2**31
        itype = np.int32 if compact else np.int64
        self._itype = itype
        # Communication buffers, reused every step (both kernels share
        # the draw buffers; the code/best/adopt buffers serve the edge
        # kernel).  All are node-sized, so they survive edge reloads.
        self._ok_buf = np.empty(num_nodes, dtype=bool)
        self._partner_buf = np.empty(num_nodes, dtype=itype)
        if self._protocol == 2:
            self._u1 = np.empty(num_nodes, dtype=np.float32)
            self._cf = np.empty(num_nodes, dtype=np.float32)
            self._choice_buf = np.empty(num_nodes, dtype=itype)
            self._edge_buf = np.empty(num_nodes, dtype=itype)
        else:
            self._u1 = np.empty(num_nodes, dtype=np.float64)
        if kernel == "edge":
            self._code64 = np.empty(num_nodes, dtype=OFFER_DTYPE)
            self._best64 = np.empty(num_nodes, dtype=OFFER_DTYPE)
            self._adopt_buf = np.empty(num_nodes, dtype=bool)
            self._push_buf = np.empty(num_nodes, dtype=bool)
            self._use32 = compact and self._src_bits < 31
            if self._use32:
                self._h32 = np.empty(num_nodes, dtype=np.int32)
                self._code32 = np.empty(num_nodes, dtype=np.int32)
                self._best32 = np.empty(num_nodes, dtype=np.int32)
                self._d32 = np.empty(num_nodes, dtype=np.int32)
                self._rev32 = self._rev_ids.astype(np.int32)
                # Largest per-step height spread the rebased int32
                # code can carry.
                self._spread_cap32 = (1 << (31 - self._src_bits)) - 1
        if self._has_delay_path:
            self._delay_buf = np.empty(num_nodes, dtype=itype)
            self._delayed_buf = np.empty(num_nodes, dtype=bool)
            self._newlab_buf = np.empty(num_nodes, dtype=np.int16)
            max_delay = int(base_delays.max())
            self._store = _DelayedOfferStore(
                itype, bound=2 * num_nodes * max_delay
            )
        self._load_spec_edges(spec)
        # arrival step -> [(dest, src, height-at-send, label-at-send)]
        # (the scatter kernel's historical queue)
        self._pending: Dict[int, List[Tuple[np.ndarray, ...]]] = {}

    def _load_spec_edges(self, spec: GraphSpec) -> None:
        """(Re)load every edge-dependent array from ``spec``.

        Called once at construction with the base spec, and again by
        timeline partition events with a cut edge set.  Node-sized
        state (heights, labels, draw buffers, the delayed-offer store)
        is untouched, so in-flight delayed offers survive a partition —
        a block already in transit is delivered even if the link that
        carried it has since been cut.
        """
        self._active_spec = spec
        self._indptr = spec.indptr
        self._indices = spec.indices
        self._num_edges = spec.num_edges
        self._row_start = spec.indptr[:-1]
        self._degrees = spec.degrees
        self._regular_degree = spec.regular_degree
        self._choice_high = np.maximum(self._degrees, 1)
        self._active = self._degrees > 0
        self._all_active = bool(self._active.all())
        edge_delays = spec.edge_delays
        if edge_delays is not None and not edge_delays.any():
            edge_delays = None  # all-zero delays: same-step path
        if edge_delays is None and self._has_delay_path:
            # A delayed run whose active edge set lost every delayed
            # edge still matures queued offers, so the delay path must
            # stay live: zero-delay edges keep the store draining.
            edge_delays = np.zeros(self._num_edges, dtype=np.int64)
        self._edge_delays = edge_delays
        itype = self._itype
        self._indices_c = self._indices.astype(itype, copy=False)
        if self._protocol == 2:
            self._refresh_deg_scale()
            self._choice_cap = np.maximum(self._degrees - 1, 0).astype(itype)
            # Row starts clamped into the edge range: a degree-0 tail
            # node's row start equals num_edges, and its (masked-out)
            # dummy edge index must still be gatherable.
            self._row_start_c = np.minimum(
                self._row_start, max(self._num_edges - 1, 0)
            ).astype(itype)
        if self._edge_delays is not None:
            self._edge_delays_c = self._edge_delays.astype(itype, copy=False)

    def _refresh_deg_scale(self) -> None:
        """Protocol 2's conditional-uniform scale, for the active
        degrees and the *current* failure rate:
        ``(u - f) * degree / (1 - f)`` maps each surviving draw back
        onto ``[0, degree)``."""
        survive = 1.0 - self.config.failure_rate
        self._deg_scale = (
            self._degrees / survive if survive > 0.0 else self._degrees * 0.0
        ).astype(np.float32)

    # ------------------------------------------------------------------
    # Timeline hooks
    # ------------------------------------------------------------------
    def _on_config_replaced(self, old, new) -> None:
        if self._protocol == 2 and old.failure_rate != new.failure_rate:
            self._refresh_deg_scale()

    def _apply_partition_fraction(self, fraction: float) -> None:
        """Partition off the lowest-index ``round(fraction * N)`` nodes.

        The partition mask is deterministic in the fraction alone, so a
        timeline event is one number; scenarios that need a specific
        cut (e.g. a measured hijack) place their attacker/observers by
        node index instead.  Fraction 0 restores the base edge set.
        """
        k = int(round(fraction * self._num_nodes))
        if k <= 0:
            self._load_spec_edges(self._base_spec)
            return
        mask = np.zeros(self._num_nodes, dtype=bool)
        mask[:k] = True
        self._load_spec_edges(self._base_spec.partitioned(mask))

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def _attacker_index(self, config) -> int:
        return config.attacker_node

    def _set_cell(self, idx: int, label: str, height: int) -> None:
        super()._set_cell(idx, label, height)
        if height > self._hmax_track:
            self._hmax_track = height
        if self._codes_valid:
            if height <= self._spread_cap32:
                self._h32[idx] = height
                self._code32[idx] = (height << self._src_bits) | int(
                    self._rev32[idx]
                )
            else:
                self._codes_valid = False

    def _random_seed_cell(self) -> int:
        grid_size = self.spec.grid_size
        if grid_size is not None:
            # Grid bridge: replay the two-draw row/column protocol.
            row = self._rand_below(grid_size)
            col = self._rand_below(grid_size)
            return row * grid_size + col
        return self._rand_below(self._num_nodes)

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def _draw_choices(self) -> np.ndarray:
        degree = self._regular_degree
        if degree is not None:
            return self._rng.integers(0, degree, size=self._num_nodes)
        return self._rng.integers(0, self._choice_high)

    def _communicate(self) -> None:
        """One synchronous CSR communication step.

        Dispatches to the configured reconcile kernel; when a phase
        collector is attached, the kernel reports its sub-phases
        (``communicate.draw`` / ``.queue`` / ``.reconcile`` /
        ``.adopt``) so regressions localize to the stage that moved.

        Protocol 2 fast-forwards quiesced steps: when no node can
        possibly adopt (every non-pinned node already sits at the
        global maximum height, so every offer — same-step or queued —
        carries a height no greater than its receiver's), the step
        draws nothing and sends nothing; queued offers still mature
        and are discarded.  State-wise this is exactly what a full
        step would compute.  The skip is part of the versioned ``.p2``
        draw sequence — protocol 1 never skips, and both kernels skip
        identically, so cross-kernel bit-identity is preserved.
        """
        metrics = self._phase_metrics
        clock = None if metrics is None else _PhaseLapper(metrics)
        if self._protocol == 2 and self._comm_quiesced():
            if self._edge_delays is not None:
                if self.kernel == "edge":
                    self._store.pop(self.step_count)
                else:
                    self._pending.pop(self.step_count, None)
            if clock is not None:
                clock.lap("communicate.draw")
            return
        if self.kernel == "edge":
            self._communicate_edge(clock)
        else:
            self._communicate_scatter(clock)

    def _comm_quiesced(self) -> bool:
        """Whether no communication step could change any node's state.

        True when every node a reconcile may update sits at the global
        maximum height: adoption requires a *strictly greater* height,
        offers never carry more than the global maximum, and heights
        never decrease — so neither this step's contacts nor any
        queued offer can adopt.  The pinned attacker is exempt from
        the uniform-height requirement (it never adopts); before the
        attack starts it is an ordinary node and must be included.
        """
        heights = self._h32 if self._codes_valid else self._hgt
        hmax = heights.max()
        if self.attacker_fork is None:
            return bool(heights.min() == hmax)
        att = self._attacker_idx
        a = heights[att]  # scalar copy; a <= hmax by construction
        heights[att] = hmax
        hmin = heights.min()
        heights[att] = a
        return bool(hmin == hmax)

    def _comm_draw(self) -> Optional[np.ndarray]:
        """Fill the failure/partner buffers for this step's contacts.

        Returns the per-node edge-index array (``None`` on an edgeless
        graph, after consuming the step's draws so the per-step
        protocol stays uniform).  Both kernels share this, so a kernel
        swap can never shift the draw sequence.
        """
        rng = self._rng
        ok = self._ok_buf
        if self._protocol == 2:
            rng.random(out=self._u1, dtype=np.float32)
            np.greater_equal(self._u1, self.config.failure_rate, out=ok)
            if not self._all_active:
                ok &= self._active
            if self._num_edges == 0:
                return None
            # The surviving tail of the same uniform picks the
            # neighbour: conditioned on u >= f, (u - f) / (1 - f) is
            # again Uniform[0, 1), so floor of it times the degree is
            # the choice.  Clamp to [0, degree - 1]: float32 rounding
            # can land exactly on degree, and failed contacts (u < f)
            # produce negative values that must stay gatherable until
            # the ok-mask disposes of them.
            cf = self._cf
            np.subtract(self._u1, np.float32(self.config.failure_rate), out=cf)
            np.multiply(cf, self._deg_scale, out=cf)
            choice = self._choice_buf
            np.copyto(choice, cf, casting="unsafe")
            np.clip(choice, 0, self._choice_cap, out=choice)
            edge = self._edge_buf
            np.add(self._row_start_c, choice, out=edge)
        else:
            rng.random(out=self._u1)
            np.greater_equal(self._u1, self.config.failure_rate, out=ok)
            ok &= self._active
            choice = self._draw_choices()
            if self._num_edges == 0:
                return None
            edge = np.minimum(self._row_start + choice, self._num_edges - 1)
        np.take(self._indices_c, edge, out=self._partner_buf)
        return edge

    def _communicate_edge(self, clock: Optional[_PhaseLapper]) -> None:
        """Edge-parallel batched reconcile over preallocated buffers.

        The step's offers (pull: the chosen partner's view; push: the
        chooser's view to its partner) are destination-grouped through
        a single indexed max-reduce pass over compressed offer codes;
        every intermediate lives in a buffer allocated once in
        ``__init__``.  Matured delayed offers join the same batch, so
        delivery is one merge.  Trajectories are bit-identical to the
        scatter kernel.
        """
        edge = self._comm_draw()
        if clock is not None:
            clock.lap("communicate.draw")
        if edge is None:
            return
        ok = self._ok_buf
        partner = self._partner_buf
        matured = None
        if self._edge_delays is not None:
            delay = self._delay_buf
            np.take(self._edge_delays_c, edge, out=delay)
            np.multiply(delay, ok, out=delay)
            delayed = self._delayed_buf
            np.greater(delay, 0, out=delayed)
            if delayed.any():
                senders = np.flatnonzero(delayed)
                other = partner[senders]
                heights = self._hgt
                labels = self._lab
                arrive = self.step_count + delay[senders].astype(np.int64)
                # Pull then push, preserving the historical maturation
                # order (see _DelayedOfferStore).
                self._store.append(
                    np.concatenate([senders, other]),
                    np.concatenate([other, senders]),
                    np.concatenate([heights[other], heights[senders]]),
                    np.concatenate([labels[other], labels[senders]]),
                    np.concatenate([arrive, arrive]),
                )
                ok &= ~delayed
            matured = self._store.pop(self.step_count)
            if clock is not None:
                clock.lap("communicate.queue")
        best, base = self._comm_reconcile(ok, partner, matured)
        if clock is not None:
            clock.lap("communicate.reconcile")
        self._comm_adopt(best, base, matured)
        if clock is not None:
            clock.lap("communicate.adopt")

    def _comm_reconcile(
        self,
        ok: np.ndarray,
        partner: np.ndarray,
        matured: Optional[Tuple[np.ndarray, ...]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Destination-grouped max over this step's offer batch.

        Offer codes are carried in int32 whenever they fit — with base
        0 while the running height bound allows (the steady state, in
        which ``_code32`` persists across steps and is patched
        incrementally at the height-mutation sites instead of being
        re-encoded), else rebased to the step's minimum height; the
        full int64 code is the final fallback.  All paths order offers
        identically, so the choice of width is invisible in
        trajectories.

        The push side scatters only the *outranking* subset — senders
        whose code exceeds their receiver's own code.  A dropped push
        carries a height no greater than its receiver's, so it can
        never adopt; and whenever adoption does happen the winning
        offer outranks the receiver, so it was never dropped and the
        winner (hence the decoded source/label) is identical to the
        unfiltered reduce.  Returns ``(best, base_height)``.
        """
        hgt = self._hgt
        zero = np.int64(0)
        use32 = self._use32
        base = zero
        if use32 and self._hmax_track > self._spread_cap32:
            base = hgt.min()
            high = hgt.max()
            if matured is not None:
                base = min(base, matured[2].min())
                high = max(high, matured[2].max())
            if int(high - base) > self._spread_cap32:
                use32 = False
                base = zero
        if use32:
            if base != 0 or not self._codes_valid:
                np.subtract(hgt, base, out=self._h32, casting="unsafe")
                np.left_shift(self._h32, self._src_bits, out=self._code32)
                np.bitwise_or(self._code32, self._rev32, out=self._code32)
                self._codes_valid = base == 0
            code, best = self._code32, self._best32
        else:
            self._codes_valid = False
            np.left_shift(hgt, self._src_bits, out=self._code64)
            np.bitwise_or(self._code64, self._rev_ids, out=self._code64)
            code, best = self._code64, self._best64
        # Pull side: the partner's offer, zeroed where the contact
        # failed (code 0 decodes to base height and never adopts).
        np.take(code, partner, out=best)
        np.multiply(best, ok, out=best)
        # Push side: destination-grouped max-reduce of the outranking
        # contacts (for an ok sender, best still holds its receiver's
        # unmasked code at this point).
        push = self._push_buf
        np.greater(code, best, out=push)
        push &= ok
        senders = np.flatnonzero(push)
        if senders.size:
            np.maximum.at(best, partner[senders], code[senders])
        if matured is not None:
            np.maximum.at(best, matured[0], self._matured_codes(matured, best.dtype, base))
        return best, base

    def _matured_codes(self, matured, dtype, base) -> np.ndarray:
        """Offer codes of a matured batch, in the step's code width."""
        _, src, height, _ = matured
        codes = ((height - base) << self._src_bits) | (
            (self._num_nodes - 1) - src
        )
        return codes.astype(dtype, copy=False)

    def _comm_adopt(
        self,
        best: np.ndarray,
        base: np.ndarray,
        matured: Optional[Tuple[np.ndarray, ...]],
    ) -> None:
        """Adopt strictly-better offers; matured wins restore at-send
        labels (attacker pinned).

        On the persistent-code fast path the exact adoption mask
        (offer height strictly above the node's) is two int32 passes —
        shift the best codes down to heights and compare against the
        maintained ``_h32`` mirror; only the adopting subset is ever
        decoded.  The fallback decodes through int64 as before.
        """
        adopt = self._adopt_buf
        if self._codes_valid:
            nh32 = self._d32
            np.right_shift(best, self._src_bits, out=nh32)
            np.greater(nh32, self._h32, out=adopt)
        else:
            heights = (best.astype(OFFER_DTYPE, copy=False) >> self._src_bits) + base
            np.greater(heights, self._hgt, out=adopt)
        if self.attacker_fork is not None:
            adopt[self._attacker_idx] = False  # pinned
        adopting = np.flatnonzero(adopt)
        if adopting.size == 0:
            return
        won_best = best[adopting].astype(OFFER_DTYPE, copy=False)
        nh = (won_best >> self._src_bits) + base
        source = (self._num_nodes - 1) - (won_best & self._src_mask)
        new_label = self._lab[source]
        if matured is not None:
            mdest, _, _, mlab = matured
            won = self._matured_codes(matured, best.dtype, base) == best[mdest]
            won &= adopt[mdest]
            if won.any():
                # Route the override through a full-length scratch so
                # matured winners land on their adopting destinations.
                scratch = self._newlab_buf
                scratch[adopting] = new_label
                scratch[mdest[won]] = mlab[won]
                new_label = scratch[adopting]
        self._lab[adopting] = new_label
        self._hgt[adopting] = nh
        if self._codes_valid:
            # Patch the persistent mirrors: new height, own source bits.
            self._h32[adopting] = nh32[adopting]
            self._code32[adopting] = (
                best[adopting] & ~np.int32(self._src_mask)
            ) | self._rev32[adopting]

    def _communicate_scatter(self, clock: Optional[_PhaseLapper]) -> None:
        """The historical allocating scatter-max reconcile.

        Kept as a bit-identical baseline for the kernel benchmarks and
        the cross-kernel suite: same draws (through ``_comm_draw``),
        same trajectories, the pre-optimization dataflow (fresh
        ``np.where`` allocation, unbuffered ``np.maximum.at``,
        dict-of-batches delay queue).
        """
        edge = self._comm_draw()
        if clock is not None:
            clock.lap("communicate.draw")
        if edge is None:
            return
        ok = self._ok_buf
        partner = self._partner_buf
        if self._edge_delays is None:
            best = self._push_pull_best(ok, partner)
            if clock is not None:
                clock.lap("communicate.reconcile")
            self._adopt_from(best)
            if clock is not None:
                clock.lap("communicate.adopt")
            return
        delay = np.where(ok, self._edge_delays[edge], 0)
        delayed = delay > 0
        if delayed.any():
            self._enqueue_delayed(np.flatnonzero(delayed), partner, delay)
            ok = ok & ~delayed
        matured = self._pending.pop(self.step_count, None)
        if clock is not None:
            clock.lap("communicate.queue")
        best = self._push_pull_best(ok, partner)
        if matured is not None:
            bits = self._src_bits
            rev_base = self._num_nodes - 1
            for dest, src, height, _ in matured:
                np.maximum.at(best, dest, (height << bits) | (rev_base - src))
        if clock is not None:
            clock.lap("communicate.reconcile")
        if matured is None:
            self._adopt_from(best)
        else:
            self._adopt_with_sent_labels(best, matured)
        if clock is not None:
            clock.lap("communicate.adopt")

    def _enqueue_delayed(
        self, senders: np.ndarray, partner: np.ndarray, delay: np.ndarray
    ) -> None:
        """Queue both offer directions with the current (at-send) view."""
        heights = self._hgt
        labels = self._lab
        sender_delay = delay[senders]
        for ticks in np.unique(sender_delay):  # repro-lint: disable=RPL311 iterates distinct delay values (small, bounded by the delay distribution), not nodes
            sel = senders[sender_delay == ticks]
            other = partner[sel]
            bucket = self._pending.setdefault(self.step_count + int(ticks), [])
            # Pull: the partner's view reaches the chooser.
            bucket.append((sel, other, heights[other], labels[other]))
            # Push: the chooser's view reaches the partner.
            bucket.append((other, sel, heights[sel], labels[sel]))

    def _adopt_with_sent_labels(
        self, best: np.ndarray, matured: List[Tuple[np.ndarray, ...]]
    ) -> None:
        """Adopt best offers, restoring at-send labels for matured wins."""
        heights = self._hgt
        new_height = best >> self._src_bits
        adopt = new_height > heights
        if self.attacker_fork is not None:
            adopt[self._attacker_idx] = False  # pinned
        if not adopt.any():
            return
        source = (self._num_nodes - 1) - (best & self._src_mask)
        new_label = self._lab[source]
        bits = self._src_bits
        rev_base = self._num_nodes - 1
        for dest, src, height, label in matured:
            won = ((height << bits) | (rev_base - src)) == best[dest]
            if won.any():
                new_label[dest[won]] = label[won]
        self._lab[adopt] = new_label[adopt]
        self._hgt[adopt] = new_height[adopt]

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def labels(self) -> List[str]:
        """Per-node fork labels, in node-index order."""
        id_labels = self._id_labels
        return [id_labels[i] for i in self._lab.tolist()]

    @property
    def heights(self) -> List[int]:
        """Per-node chain heights, in node-index order."""
        return self._hgt.tolist()

    def snapshot(self) -> GraphSnapshot:
        return GraphSnapshot(
            step=self.step_count,
            labels=tuple(self.labels),
            heights=tuple(self.heights),
        )

    def partition_fractions(self, mask: Sequence[bool]) -> Dict[str, float]:
        """Fork fractions restricted to the masked nodes."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._num_nodes,):
            raise ConfigurationError(
                "one mask entry per node required",
                nodes=self._num_nodes,
                mask=int(mask.size),
            )
        total = int(mask.sum())
        if total == 0:
            return {}
        counts = np.bincount(self._lab[mask], minlength=len(self._id_labels))
        return {
            self._id_labels[i]: int(counts[i]) / total
            for i in np.flatnonzero(counts).tolist()
        }
