"""Full-node behaviour.

A :class:`FullNode` owns a block tree (and optionally a UTXO set),
keeps a mempool, and relays inventory to its peers exactly as the real
client does: ``inv`` announcements, ``getdata`` requests for unknown
objects, then full ``block``/``tx`` delivery.  Communication failures
and link latency are injected by the :class:`~repro.netsim.network.Network`
on every send, reproducing the ~10% failure environment the paper's
simulator used.

Nodes can be driven into the states the attacks need:

- ``online=False`` — node is down (16.5% of nodes in the snapshot);
- ``eclipsed=True`` — spatially isolated: all traffic to/from honest
  peers is dropped (BGP hijack victim);
- attacker connections — extra peer links that only the adversary uses
  to feed counterfeit blocks (temporal attack).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..blockchain.block import Block
from ..blockchain.chain import BlockTree, ReorgEvent
from ..blockchain.tx import Transaction, UtxoSet
from ..errors import ConfigurationError, SimulationError
from ..types import Seconds
from .messages import (
    AddrMsg,
    BlockMsg,
    GetDataMsg,
    GetTipMsg,
    InvMsg,
    InvType,
    Message,
    TipMsg,
    TxMsg,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network

__all__ = ["NodeConfig", "NodeStats", "FullNode"]


@dataclass(frozen=True)
class NodeConfig:
    """Static configuration of one full node.

    Attributes:
        node_id: Stable identifier, matching the topology's node ids.
        outbound_peers: Outbound connection budget (Bitcoin default 8).
        track_utxo: Maintain a full UTXO set (costly; enable only for
            nodes whose transaction reversal the experiment inspects).
        software_version: Client version string (logical attacks key on
            this; see Table VIII).
    """

    node_id: int
    outbound_peers: int = 8
    track_utxo: bool = False
    software_version: str = "B. Core v0.16.0"

    def __post_init__(self) -> None:
        if self.outbound_peers < 1:
            raise ConfigurationError("outbound_peers must be >= 1")


@dataclass
class NodeStats:
    """Running counters for one node (feeds the crawler's indices)."""

    messages_sent: int = 0
    messages_received: int = 0
    messages_dropped: int = 0
    blocks_accepted: int = 0
    blocks_counterfeit_accepted: int = 0
    txs_accepted: int = 0
    reorgs: int = 0
    deepest_reorg: int = 0
    last_block_at: Optional[Seconds] = None
    utxo_inconsistent: bool = False


class FullNode:
    """One reachable Bitcoin full node in the simulated network."""

    def __init__(self, config: NodeConfig, network: "Network", genesis: Block) -> None:
        self.config = config
        self.network = network
        self.tree = BlockTree(genesis)
        self.utxo: Optional[UtxoSet] = UtxoSet() if config.track_utxo else None
        self.mempool: Dict[str, Transaction] = {}
        # Peer ids: the list gives deterministic iteration/broadcast
        # order (insertion order), the companion set answers the
        # membership checks on the hot message paths in O(1).
        self.peers: List[int] = []
        self._peer_set: Set[int] = set()
        self.online: bool = True
        self.eclipsed: bool = False
        self.stats = NodeStats()
        # Hashes we have seen announced or hold, to suppress re-requests.
        self._known_blocks: Set[str] = {genesis.hash}
        self._known_txs: Set[str] = set()
        # Hashes requested but not yet delivered.
        self._pending: Set[str] = set()
        # Peers this node withholds spontaneous inv announcements from.
        # Used by the temporal attacker: victims must not learn about
        # honest blocks through the attacker's own connections.
        self.suppress_inv_to: Set[int] = set()

    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.config.node_id

    @property
    def height(self) -> int:
        return self.tree.height

    @property
    def best_hash(self) -> str:
        return self.tree.best_tip.hash

    def lag(self, network_height: int) -> int:
        """Blocks this node trails the network tip (the block index)."""
        return self.tree.lag_of(network_height)

    def add_peer(self, peer_id: int) -> None:
        if peer_id == self.node_id:
            raise SimulationError("node cannot peer with itself", node=self.node_id)
        if peer_id not in self._peer_set:
            self._peer_set.add(peer_id)
            self.peers.append(peer_id)

    def remove_peer(self, peer_id: int) -> None:
        if peer_id in self._peer_set:
            self._peer_set.discard(peer_id)
            self.peers.remove(peer_id)

    def has_peer(self, peer_id: int) -> bool:
        """O(1) peer-membership check (the hot-path alternative to
        scanning :attr:`peers`)."""
        return peer_id in self._peer_set

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: int, message: Message) -> None:
        """Hand a message to the network (which may drop or delay it)."""
        if not self.online:
            return
        self.stats.messages_sent += 1
        self.network.transmit(self.node_id, dst, message)

    def broadcast_inv(self, inv_type: InvType, obj_hash: str) -> None:
        """Announce an object to every peer (minus suppressed ones)."""
        for peer in self.peers:
            if peer in self.suppress_inv_to:
                continue
            self.send(peer, InvMsg(inv_type=inv_type, hashes=(obj_hash,)))

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def receive(self, src: int, message: Message) -> None:
        """Entry point called by the network after latency/failure."""
        if not self.online:
            return
        self.stats.messages_received += 1
        if isinstance(message, InvMsg):
            self._handle_inv(src, message)
        elif isinstance(message, GetDataMsg):
            self._handle_getdata(src, message)
        elif isinstance(message, BlockMsg):
            self._handle_block(src, message.block)
        elif isinstance(message, TxMsg):
            self._handle_tx(src, message.tx)
        elif isinstance(message, AddrMsg):
            self._handle_addr(src, message)
        elif isinstance(message, GetTipMsg):
            self.send(src, TipMsg(tip_hash=self.best_hash, height=self.height))
        elif isinstance(message, TipMsg):
            self._handle_tip(src, message)
        else:  # pragma: no cover - exhaustive by construction
            raise SimulationError("unknown message type", message=type(message).__name__)

    def _handle_tip(self, src: int, msg: TipMsg) -> None:
        """A peer claims a better tip: request it if we lack it.

        The arriving block's missing ancestry is then fetched through
        the normal orphan-resolution path, so a node recovering from
        staleness (BlockAware) catches up block by block.
        """
        if msg.height > self.height and msg.tip_hash not in self._known_blocks:
            self._request(InvType.BLOCK, (msg.tip_hash,), src)

    #: Seconds before an unanswered getdata is retried with another peer.
    REQUEST_TIMEOUT: Seconds = 20.0
    #: Retries before a request is abandoned (a later inv can revive it).
    MAX_REQUEST_ATTEMPTS: int = 8

    def _handle_inv(self, src: int, msg: InvMsg) -> None:
        known = self._known_blocks if msg.inv_type is InvType.BLOCK else self._known_txs
        wanted = tuple(
            h for h in msg.hashes if h not in known and h not in self._pending
        )
        if wanted:
            self._request(msg.inv_type, wanted, src)

    def _request(self, inv_type: InvType, hashes: Tuple[str, ...], peer: int) -> None:
        """Send a getdata and arm the retry timer.

        Any hop of the inv/getdata/block exchange can be dropped by the
        network's failure injection; without retries a single loss at
        10% failure rate would strand nodes blocks behind forever.
        Real clients re-request from another peer after a timeout; so
        do we.
        """
        self._pending.update(hashes)
        self.send(peer, GetDataMsg(inv_type=inv_type, hashes=hashes))
        self.network.sim.schedule(
            self.REQUEST_TIMEOUT, lambda: self._retry(inv_type, hashes, attempt=1)
        )

    def _retry(self, inv_type: InvType, hashes: Tuple[str, ...], attempt: int) -> None:
        if not self.online:
            return
        outstanding = tuple(h for h in hashes if h in self._pending)
        if not outstanding:
            return
        if attempt >= self.MAX_REQUEST_ATTEMPTS or not self.peers:
            self._pending.difference_update(outstanding)
            return
        # Random peer per retry: a deterministic rotation can starve a
        # reachable peer behind an eclipse boundary forever.
        rng = self.network.streams.stream("node.retry")
        peer = rng.choice(self.peers)
        self.send(peer, GetDataMsg(inv_type=inv_type, hashes=outstanding))
        self.network.sim.schedule(
            self.REQUEST_TIMEOUT,
            lambda: self._retry(inv_type, hashes, attempt=attempt + 1),
        )

    def _handle_getdata(self, src: int, msg: GetDataMsg) -> None:
        if msg.inv_type is InvType.BLOCK:
            for block_hash in msg.hashes:
                if block_hash in self.tree:
                    self.send(src, BlockMsg(block=self.tree.get(block_hash)))
        else:
            for txid in msg.hashes:
                tx = self.mempool.get(txid)
                if tx is not None:
                    self.send(src, TxMsg(tx=tx))

    def _handle_block(self, src: int, block: Block) -> None:
        self.accept_block(block, src=src)

    def _handle_tx(self, src: int, tx: Transaction) -> None:
        self.accept_transaction(tx)

    def _handle_addr(self, src: int, msg: AddrMsg) -> None:
        # Peer discovery: adopt a few addresses if below budget.
        for address in msg.addresses:
            if len(self.peers) >= self.config.outbound_peers * 2:
                break
            if address != self.node_id and address not in self._peer_set:
                self.network.connect(self.node_id, address)

    # ------------------------------------------------------------------
    # Object acceptance
    # ------------------------------------------------------------------
    def accept_block(self, block: Block, src: Optional[int] = None) -> Optional[ReorgEvent]:
        """Validate, store, and relay a block; apply UTXO effects.

        ``src`` is the peer that delivered the block (None for locally
        mined blocks); missing ancestry is requested from it first,
        since whoever has the child certainly has the parents.
        Returns the reorg event if the best tip changed (the miner
        subsystem watches this to restart mining on the new tip).
        """
        self._pending.discard(block.hash)
        if block.hash in self._known_blocks and self.tree.knows(block.hash):
            return None
        self._known_blocks.add(block.hash)
        event = self.tree.add_block(block)
        # Request missing ancestry: crucial when the block arrived as an
        # orphan (e.g. a node healed from an eclipse hears only the
        # newest block and must backfill the chain it missed).
        missing = self.tree.missing_parents()
        if missing:
            self._request_blocks(missing, prefer=src)
        if block.hash in self.tree:
            self.stats.blocks_accepted += 1
            self.stats.last_block_at = self.network.now
            if block.counterfeit:
                self.stats.blocks_counterfeit_accepted += 1
            self.broadcast_inv(InvType.BLOCK, block.hash)
        if event is not None:
            self._apply_reorg(event)
        return event

    def accept_transaction(self, tx: Transaction) -> bool:
        """Admit a transaction to the mempool and relay it."""
        if tx.txid in self._known_txs:
            return False
        self._known_txs.add(tx.txid)
        self._pending.discard(tx.txid)
        if self.utxo is not None and self.utxo.would_double_spend(tx):
            return False
        self.mempool[tx.txid] = tx
        self.stats.txs_accepted += 1
        self.broadcast_inv(InvType.TX, tx.txid)
        return True

    def _request_blocks(self, hashes: List[str], prefer: Optional[int] = None) -> None:
        wanted = tuple(h for h in hashes if h not in self._pending)
        if not wanted:
            return
        if prefer is not None:
            target = prefer
        elif self.peers:
            target = self.peers[0]
        else:
            return
        self._request(InvType.BLOCK, wanted, target)

    def _apply_reorg(self, event: ReorgEvent) -> None:
        if not event.is_extension:
            self.stats.reorgs += 1
            self.stats.deepest_reorg = max(self.stats.deepest_reorg, event.depth)
        # Mempool hygiene runs for every node — a miner that kept
        # already-confirmed transactions in its mempool would pack them
        # into later blocks again.  Confirmed transactions leave the
        # mempool; detached ones are resurrected (simplified: re-add).
        for block in event.attached:
            for tx in block.transactions:
                self.mempool.pop(tx.txid, None)
        for block in event.detached:
            for tx in block.transactions:
                if not tx.coinbase:
                    self.mempool.setdefault(tx.txid, tx)
        if self.utxo is None or self.stats.utxo_inconsistent:
            return
        try:
            for block in event.detached:
                self.utxo.revert_block_txs(block.transactions)
            for block in event.attached:
                self.utxo.apply_block_txs(block.transactions)
        except Exception:
            # A conflicting branch (e.g. attacker double spends) leaves
            # the tracked set unusable; record it rather than guess.
            self.stats.utxo_inconsistent = True

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"<FullNode {self.node_id} h={self.height}"
            f"{' offline' if not self.online else ''}"
            f"{' eclipsed' if self.eclipsed else ''}>"
        )
