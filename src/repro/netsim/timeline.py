"""Tick-boundary timelines: engine parameters that change mid-run.

The scenario layer describes attacks as *schedules* — an attacker
hash-rate ramp, a failure-rate (churn) regime, a BGP-hijack partition
window — while the propagation engines expose a single static config.
This module is the bridge: a :class:`Timeline` is a normalized sequence
of :class:`TimelineEvent` changepoints that an engine applies at tick
boundaries, exactly once each, before the step's mining phase (see
``_GridEngineBase.attach_timeline``).

Normalization is deterministic and input-order independent: events are
sorted by step, same-step events are merged field-wise, and two events
that disagree about the same field at the same step are a
:class:`~repro.errors.ConfigurationError` rather than a silent
last-wins.  That property (``Timeline(shuffled(events)) ==
Timeline(events)``) is pinned under Hypothesis, because sweep specs
hash their schedules into cache keys — normalization ambiguity would
either split identical scenarios across keys or collide distinct ones.

Partition windows compile through :meth:`Timeline.from_schedules`: a
``(start, end, fraction)`` window becomes a set-event at ``start`` and
a clear-event at ``end``.  When one window ends exactly where another
begins, the start wins (the new partition replaces the old one at that
boundary); two *different* starts at one step still conflict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["Timeline", "TimelineEvent"]

#: Fields an event may change (also the merge surface).
_EVENT_FIELDS = ("attacker_share", "failure_rate", "partition_fraction")


@dataclass(frozen=True)
class TimelineEvent:
    """One tick-boundary changepoint.

    Attributes:
        step: Simulation step at which the change takes effect (the
            event applies before that step's mining phase; step 0
            events apply to the initial state at attach time).
        attacker_share: New attacker hash-rate fraction, or ``None``
            to leave it unchanged.
        failure_rate: New per-communication failure probability, or
            ``None``.
        partition_fraction: New partition size as a node fraction
            (``0.0`` clears the partition, restoring the full edge
            set), or ``None``.  Only the graph engine carries dynamic
            partitions; grid engines reject such events.
    """

    step: int
    attacker_share: Optional[float] = None
    failure_rate: Optional[float] = None
    partition_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ConfigurationError("event step must be >= 0", step=self.step)
        if self.attacker_share is not None and not (
            0.0 <= self.attacker_share < 1.0
        ):
            raise ConfigurationError(
                "attacker_share in [0,1)", share=self.attacker_share
            )
        if self.failure_rate is not None and not (
            0.0 <= self.failure_rate < 1.0
        ):
            raise ConfigurationError(
                "failure_rate in [0,1)", rate=self.failure_rate
            )
        if self.partition_fraction is not None and not (
            0.0 <= self.partition_fraction < 1.0
        ):
            raise ConfigurationError(
                "partition_fraction in [0,1)", fraction=self.partition_fraction
            )
        if all(getattr(self, name) is None for name in _EVENT_FIELDS):
            raise ConfigurationError("event changes nothing", step=self.step)


class Timeline:
    """A normalized, immutable sequence of tick-boundary events.

    Construction accepts events in any order; the normalized form is
    sorted by step with same-step events merged field-wise.  Equality
    and hashing follow the normalized form, so two differently-written
    but equivalent timelines compare equal.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[TimelineEvent] = ()) -> None:
        merged: Dict[int, Dict[str, float]] = {}
        for event in events:
            fields = merged.setdefault(event.step, {})
            for name in _EVENT_FIELDS:
                value = getattr(event, name)
                if value is None:
                    continue
                if name in fields and fields[name] != value:
                    raise ConfigurationError(
                        "conflicting timeline events at one step",
                        step=event.step,
                        field=name,
                        values=(fields[name], value),
                    )
                fields[name] = value
        self._events: Tuple[TimelineEvent, ...] = tuple(
            TimelineEvent(step=step, **merged[step]) for step in sorted(merged)
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_schedules(
        cls,
        hash_schedule: Sequence[Tuple[int, float]] = (),
        failure_schedule: Sequence[Tuple[int, float]] = (),
        partitions: Sequence[Tuple[int, int, float]] = (),
    ) -> "Timeline":
        """Compile piecewise schedules and partition windows.

        ``hash_schedule`` / ``failure_schedule`` are ``(step, value)``
        changepoints (any order; duplicate steps must agree).
        ``partitions`` are ``(start, end, fraction)`` windows with
        ``start < end``; the partition is live for steps ``start``
        through ``end - 1``.  A window starting exactly where another
        ends replaces it at that boundary step.
        """
        events = [
            TimelineEvent(step=step, attacker_share=share)
            for step, share in hash_schedule
        ]
        events.extend(
            TimelineEvent(step=step, failure_rate=rate)
            for step, rate in failure_schedule
        )
        starts: Dict[int, float] = {}
        ends: Dict[int, float] = {}
        for start, end, fraction in partitions:
            if start < 0 or end <= start:
                raise ConfigurationError(
                    "partition window needs 0 <= start < end",
                    start=start,
                    end=end,
                )
            if not 0.0 < fraction < 1.0:
                raise ConfigurationError(
                    "partition fraction in (0,1)", fraction=fraction
                )
            if start in starts and starts[start] != fraction:
                raise ConfigurationError(
                    "conflicting partition windows start at one step",
                    step=start,
                    values=(starts[start], fraction),
                )
            starts[start] = fraction
            ends.setdefault(end, 0.0)
        for step in sorted(starts):
            events.append(
                TimelineEvent(step=step, partition_fraction=starts[step])
            )
        for step in sorted(ends):
            if step in starts:
                continue  # a new window takes over at this boundary
            events.append(TimelineEvent(step=step, partition_fraction=0.0))
        return cls(events)

    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[TimelineEvent, ...]:
        return self._events

    @property
    def needs_partitions(self) -> bool:
        """Whether any event carries a partition change (graph-only)."""
        return any(e.partition_fraction is not None for e in self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeline({list(self._events)!r})"
