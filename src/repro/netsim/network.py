"""Network assembly: nodes, peer graph, transmission, partitions.

The :class:`Network` is the integration point of the simulator: it owns
the event kernel, all :class:`~repro.netsim.node.FullNode` instances,
the miners, and the transmission path.  Every message between nodes
passes through :meth:`Network.transmit`, which is where the paper's
attack mechanics are injected:

- *communication failures*: each message is dropped with probability
  ``failure_rate`` (the paper's simulator used ~10%);
- *spatial partitions*: messages crossing an eclipse boundary are
  dropped (BGP-hijacked victims only reach the attacker);
- *latency*: the configured latency model delays delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..blockchain.block import Block, genesis_block
from ..blockchain.pow import DifficultySchedule, MiningModel
from ..blockchain.tx import Transaction
from ..errors import ConfigurationError, SimulationError
from ..rng import RngStreams
from ..types import BITCOIN_BLOCK_INTERVAL, Seconds
from .events import Simulator
from .latency import DiffusionLatency, LatencyModel
from .messages import Message, TxMsg
from .miner import Miner, MiningPool
from .node import FullNode, NodeConfig

__all__ = ["NetworkConfig", "Network"]


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of one simulated network.

    Attributes:
        num_nodes: Reachable full nodes.
        outbound_peers: Outbound connections per node (default 8).
        failure_rate: Per-message drop probability (paper: ~0.1).
        block_interval: Target block interval (600 s).
        seed: Root seed for all randomness.
        track_utxo_nodes: Node ids that maintain full UTXO sets.
    """

    num_nodes: int
    outbound_peers: int = 8
    failure_rate: float = 0.1
    block_interval: Seconds = BITCOIN_BLOCK_INTERVAL
    seed: int = 0
    track_utxo_nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ConfigurationError("need at least two nodes", num=self.num_nodes)
        if not 0.0 <= self.failure_rate < 1.0:
            raise ConfigurationError("failure_rate in [0,1)", rate=self.failure_rate)
        if self.outbound_peers >= self.num_nodes:
            raise ConfigurationError(
                "outbound_peers must be below num_nodes",
                peers=self.outbound_peers,
                num=self.num_nodes,
            )


class Network:
    """A simulated Bitcoin P2P network."""

    def __init__(
        self,
        config: NetworkConfig,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.config = config
        self.latency: LatencyModel = latency or DiffusionLatency(rate=0.8)
        self.streams = RngStreams(config.seed)
        self.sim = Simulator()
        self.genesis = genesis_block()
        self.mining_model = MiningModel(
            rng=self.streams.stream("mining"),
            schedule=DifficultySchedule(base_interval=config.block_interval),
        )
        self.nodes: Dict[int, FullNode] = {}
        self.pools: List[MiningPool] = []
        self.miners: List[Miner] = []
        self.dropped_messages = 0
        self.delivered_messages = 0
        # Node ids allowed to cross eclipse boundaries (the attackers).
        self.attacker_ids: Set[int] = set()

        track = set(config.track_utxo_nodes)
        for node_id in range(config.num_nodes):
            node_config = NodeConfig(
                node_id=node_id,
                outbound_peers=config.outbound_peers,
                track_utxo=node_id in track,
            )
            self.nodes[node_id] = FullNode(node_config, self, self.genesis)
        self._build_peer_graph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_peer_graph(self) -> None:
        """Each node opens ``outbound_peers`` random connections.

        Connections are bidirectional (Bitcoin accepts inbound), giving
        a random graph of average degree ~2x the outbound budget —
        matching the "peers are distributed and can be associated with
        any AS" observation (§V-B).
        """
        rng = self.streams.stream("peergraph")
        ids = list(self.nodes)
        for node_id in ids:
            node = self.nodes[node_id]
            attempts = 0
            while (
                len(node.peers) < self.config.outbound_peers
                and attempts < 20 * self.config.outbound_peers
            ):
                peer_id = rng.choice(ids)
                attempts += 1
                if peer_id != node_id and not node.has_peer(peer_id):
                    self.connect(node_id, peer_id)

    def connect(self, a: int, b: int) -> None:
        """Create a bidirectional peer link."""
        if a == b:
            raise SimulationError("self connection", node=a)
        self.nodes[a].add_peer(b)
        self.nodes[b].add_peer(a)

    def disconnect(self, a: int, b: int) -> None:
        self.nodes[a].remove_peer(b)
        self.nodes[b].remove_peer(a)

    def add_pool(
        self,
        name: str,
        hash_share: float,
        node_id: int,
        stratum_asn: int = 0,
    ) -> MiningPool:
        """Attach a mining pool to ``node_id`` and start its miner."""
        from .miner import StratumServer

        pool = MiningPool(
            name=name,
            hash_share=hash_share,
            node_id=node_id,
            stratum=StratumServer(pool_name=name, asn=stratum_asn),
            pool_id=len(self.pools),
        )
        self.pools.append(pool)
        miner = Miner(pool, self, self.mining_model)
        self.miners.append(miner)
        miner.start()
        return pool

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    @property
    def now(self) -> Seconds:
        return self.sim.now

    def node(self, node_id: int) -> FullNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise SimulationError("unknown node", node_id=node_id) from None

    def transmit(self, src: int, dst: int, message: Message) -> None:
        """Deliver ``message`` subject to partitions, loss, and latency."""
        if dst not in self.nodes:
            return
        if self._blocked(src, dst):
            self.dropped_messages += 1
            self.nodes[src].stats.messages_dropped += 1
            return
        rng = self.streams.stream("transmission")
        if rng.random() < self.config.failure_rate:
            self.dropped_messages += 1
            self.nodes[src].stats.messages_dropped += 1
            return
        delay = self.latency.delay(src, dst, rng)
        self.delivered_messages += 1
        self.sim.schedule(delay, lambda: self.nodes[dst].receive(src, message))

    def deliver_direct(self, src: int, dst: int, block: Block) -> None:
        """Attacker-path delivery: bypasses eclipse boundaries and loss.

        The temporal attacker maintains its own connections to victims
        (Figure 5); those links are modelled as reliable since the
        attacker controls both ends.
        """
        rng = self.streams.stream("transmission")
        delay = self.latency.delay(src, dst, rng)
        self.sim.schedule(
            delay, lambda: self.nodes[dst].accept_block(block, src=src)
        )

    def _blocked(self, src: int, dst: int) -> bool:
        """Whether the (src, dst) path is severed by an eclipse."""
        src_node, dst_node = self.nodes[src], self.nodes[dst]
        if src in self.attacker_ids or dst in self.attacker_ids:
            return False
        return src_node.eclipsed != dst_node.eclipsed

    # ------------------------------------------------------------------
    # Attack and workload hooks
    # ------------------------------------------------------------------
    def eclipse(self, node_ids: Iterable[int]) -> None:
        """Spatially isolate ``node_ids`` (BGP hijack victims)."""
        for node_id in node_ids:
            self.node(node_id).eclipsed = True

    def heal(self, node_ids: Iterable[int]) -> None:
        """Lift the eclipse from ``node_ids``."""
        for node_id in node_ids:
            self.node(node_id).eclipsed = False

    def set_offline(self, node_ids: Iterable[int], offline: bool = True) -> None:
        for node_id in node_ids:
            self.node(node_id).online = not offline

    def submit_transaction(self, node_id: int, tx: Transaction) -> None:
        """Inject a wallet transaction at ``node_id``."""
        self.node(node_id).accept_transaction(tx)

    # ------------------------------------------------------------------
    # Execution and measurement
    # ------------------------------------------------------------------
    def run_for(self, duration: Seconds) -> int:
        """Advance the simulation by ``duration`` seconds."""
        return self.sim.run_until(self.sim.now + duration)

    def network_height(self) -> int:
        """Height of the most advanced node — the published tip."""
        return max(node.height for node in self.nodes.values())

    def honest_height(self) -> int:
        """Best height among chains with no counterfeit blocks on top."""
        best = 0
        for node in self.nodes.values():
            if node.tree.counterfeit_on_main() == 0:
                best = max(best, node.height)
        return best

    def lags(self) -> Dict[int, int]:
        """Per-node block lag relative to the network tip."""
        tip = self.network_height()
        return {nid: node.lag(tip) for nid, node in self.nodes.items()}

    def partition_views(self) -> Dict[str, List[int]]:
        """Group nodes by best-tip hash — the observable partitions."""
        views: Dict[str, List[int]] = {}
        for node_id, node in self.nodes.items():
            views.setdefault(node.best_hash, []).append(node_id)
        return views

    def nodes_on_counterfeit_chain(self) -> List[int]:
        """Victims currently following a chain with attacker blocks."""
        return [
            node_id
            for node_id, node in self.nodes.items()
            if node.tree.counterfeit_on_main() > 0
        ]

    def total_hash_share(self, active_only: bool = True) -> float:
        return sum(
            pool.hash_share
            for pool in self.pools
            if pool.active or not active_only
        )
