"""Event-driven Bitcoin P2P network simulator.

This package models the live network the paper measured and attacked:

- :mod:`repro.netsim.events` — the discrete-event kernel;
- :mod:`repro.netsim.messages` — inv / getdata / block / tx / addr
  protocol messages (paper §IV-A lists the same set Bitnodes uses);
- :mod:`repro.netsim.latency` — link-delay models, including the
  diffusion model (independent exponential delays) Bitcoin switched to
  in 2015 and the legacy trickle model (§V-B);
- :mod:`repro.netsim.node` — full-node behaviour: 8 outbound peers,
  inventory-based relay, validation, communication failures;
- :mod:`repro.netsim.miner` — miners/pools and stratum servers;
- :mod:`repro.netsim.network` — assembly, partitions, attack hooks;
- :mod:`repro.netsim.grid` — the paper's grid simulator (Figure 7);
- :mod:`repro.netsim.graph` — the sparse CSR engine for arbitrary
  topologies (AS-level graphs, synthetic power-law networks);
- :mod:`repro.netsim.metrics` — per-node lag sampling for Figure 6.
"""

from .churn import ChurnConfig, ChurnProcess
from .events import EventQueue, Simulator
from .graph import (
    GraphConfig,
    GraphSimulatorVec,
    GraphSnapshot,
    GraphSpec,
    graph_config_from_grid,
    hijack_partition_mask,
)
from .grid import (
    ENGINES,
    GridConfig,
    GridSimulator,
    GridSimulatorVec,
    GridSnapshot,
    VEC_SIZE_THRESHOLD,
    make_simulator,
    span_ratio_delay,
)
from .latency import (
    BITCOIN_PROPAGATION_2019,
    DELAY_MODELS,
    ConstantLatency,
    DiffusionLatency,
    EmpiricalLatency,
    LatencyModel,
    UniformLatency,
    quantize_ticks,
)
from .messages import AddrMsg, BlockMsg, GetDataMsg, GetTipMsg, InvMsg, Message, TipMsg, TxMsg
from .miner import Miner, MiningPool, StratumServer
from .network import Network, NetworkConfig
from .node import FullNode, NodeConfig, NodeStats
from .timeline import Timeline, TimelineEvent

__all__ = [
    "ChurnConfig",
    "ChurnProcess",
    "EventQueue",
    "Simulator",
    "ENGINES",
    "GraphConfig",
    "GraphSimulatorVec",
    "GraphSnapshot",
    "GraphSpec",
    "graph_config_from_grid",
    "hijack_partition_mask",
    "GridSimulator",
    "GridSimulatorVec",
    "GridConfig",
    "GridSnapshot",
    "VEC_SIZE_THRESHOLD",
    "make_simulator",
    "span_ratio_delay",
    "BITCOIN_PROPAGATION_2019",
    "DELAY_MODELS",
    "ConstantLatency",
    "DiffusionLatency",
    "EmpiricalLatency",
    "LatencyModel",
    "UniformLatency",
    "quantize_ticks",
    "AddrMsg",
    "BlockMsg",
    "GetDataMsg",
    "GetTipMsg",
    "InvMsg",
    "Message",
    "TipMsg",
    "TxMsg",
    "Miner",
    "MiningPool",
    "StratumServer",
    "Network",
    "NetworkConfig",
    "FullNode",
    "NodeConfig",
    "NodeStats",
    "Timeline",
    "TimelineEvent",
]
