"""Link-latency models.

Two models matter to the paper:

- **Diffusion** (:class:`DiffusionLatency`): since 2015 Bitcoin relays
  with *independent exponential delays* per link.  The paper's timing
  analysis (Table VI) models attacker connection times the same way,
  "as used in prior work by Fanti et al." (§V-B, eq. 1).
- **Trickle** (legacy): the pre-2015 gossip relayed to one peer per
  trickle interval; we model its effect as a quantized delay.  Kept for
  the D1 ablation comparing partition windows under each regime.

Latency models are callables ``(src, dst, rng) -> seconds`` so nodes
remain agnostic about the distribution in force.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

from ..errors import ConfigurationError
from ..types import Seconds

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "DiffusionLatency",
    "TrickleLatency",
]


class LatencyModel(Protocol):
    """Anything that produces a link delay for a (src, dst) pair."""

    def delay(self, src: int, dst: int, rng: random.Random) -> Seconds:
        """Sample the one-way delay in seconds."""
        ...


@dataclass(frozen=True)
class ConstantLatency:
    """Fixed delay on every link (the 'perfect network' baseline)."""

    seconds: Seconds = 0.1

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ConfigurationError("latency must be non-negative")

    def delay(self, src: int, dst: int, rng: random.Random) -> Seconds:
        return self.seconds


@dataclass(frozen=True)
class UniformLatency:
    """Uniform delay in [low, high] — crude but useful in tests."""

    low: Seconds = 0.05
    high: Seconds = 0.5

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ConfigurationError("need 0 <= low <= high", low=self.low, high=self.high)

    def delay(self, src: int, dst: int, rng: random.Random) -> Seconds:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class DiffusionLatency:
    """Independent exponential delays (post-2015 Bitcoin relay).

    ``rate`` is the λ of the paper's eq. (1): the per-link delay is
    Exp(λ), mean 1/λ seconds.  Table VI sweeps λ from 0.4 to 0.9.
    """

    rate: float = 0.8

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("rate must be positive", rate=self.rate)

    def delay(self, src: int, dst: int, rng: random.Random) -> Seconds:
        return rng.expovariate(self.rate)

    @property
    def mean(self) -> Seconds:
        return 1.0 / self.rate


@dataclass(frozen=True)
class TrickleLatency:
    """Legacy trickle spreading, approximated as quantized delays.

    Pre-2015 nodes forwarded queued announcements to one random peer
    every trickle interval, so the effective per-link delay is a random
    number of whole intervals: ``interval * Geometric(p)`` with ``p``
    the per-round selection probability (~1/peers).
    """

    interval: Seconds = 0.1
    peers: int = 8

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError("interval must be positive")
        if self.peers < 1:
            raise ConfigurationError("peers must be >= 1")

    def delay(self, src: int, dst: int, rng: random.Random) -> Seconds:
        rounds = 1
        p = 1.0 / self.peers
        while rng.random() > p:
            rounds += 1
            if rounds > 100 * self.peers:  # numerical guard
                break
        return rounds * self.interval
