"""Link-latency models.

Three models matter to the paper:

- **Diffusion** (:class:`DiffusionLatency`): since 2015 Bitcoin relays
  with *independent exponential delays* per link.  The paper's timing
  analysis (Table VI) models attacker connection times the same way,
  "as used in prior work by Fanti et al." (§V-B, eq. 1).
- **Trickle** (legacy): the pre-2015 gossip relayed to one peer per
  trickle interval; we model its effect as a quantized delay.  Kept for
  the D1 ablation comparing partition windows under each regime.
- **Empirical** (:class:`EmpiricalLatency`): an inverse-CDF sampler
  over *measured* propagation-delay percentiles.
  :data:`BITCOIN_PROPAGATION_2019` pins the block-propagation
  distribution of the paper's era, as measured by the Bitcoin P2P
  vivisection campaigns (Ben Mariem et al.) on top of the
  Decker–Wattenhofer methodology; under the Nakamoto latency–security
  framing (Li–Guo–Ren) this distribution *is* the Δ that trades
  confirmation latency against safety.  The graph engine consumes it
  through :meth:`~repro.netsim.graph.GraphSpec.with_delay_model`,
  which quantizes each sampled delay to whole simulation ticks.

Latency models are callables ``(src, dst, rng) -> seconds`` so nodes
remain agnostic about the distribution in force.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Protocol, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import Seconds

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "DiffusionLatency",
    "TrickleLatency",
    "EmpiricalLatency",
    "BITCOIN_PROPAGATION_2019",
    "DELAY_MODELS",
    "quantize_ticks",
]


def quantize_ticks(seconds: Seconds, tick_seconds: Seconds) -> int:
    """Quantize a delay to whole simulation ticks.

    The rule — shared by the scalar and the vectorized sampling paths —
    is *nearest tick, ties to even* (so 1.5 ticks → 2, 2.5 ticks → 2),
    never below zero.  A delay under half a tick therefore rounds to 0:
    the contact lands in the same step, exactly the grid engines'
    zero-delay semantics.
    """
    if tick_seconds <= 0:
        raise ConfigurationError(
            "tick_seconds must be positive", tick=tick_seconds
        )
    if seconds < 0:
        raise ConfigurationError("seconds must be non-negative", seconds=seconds)
    return int(np.rint(seconds / tick_seconds))


class LatencyModel(Protocol):
    """Anything that produces a link delay for a (src, dst) pair."""

    def delay(self, src: int, dst: int, rng: random.Random) -> Seconds:
        """Sample the one-way delay in seconds."""
        ...


@dataclass(frozen=True)
class ConstantLatency:
    """Fixed delay on every link (the 'perfect network' baseline)."""

    seconds: Seconds = 0.1

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ConfigurationError("latency must be non-negative")

    def delay(self, src: int, dst: int, rng: random.Random) -> Seconds:
        return self.seconds


@dataclass(frozen=True)
class UniformLatency:
    """Uniform delay in [low, high] — crude but useful in tests."""

    low: Seconds = 0.05
    high: Seconds = 0.5

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ConfigurationError("need 0 <= low <= high", low=self.low, high=self.high)

    def delay(self, src: int, dst: int, rng: random.Random) -> Seconds:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class DiffusionLatency:
    """Independent exponential delays (post-2015 Bitcoin relay).

    ``rate`` is the λ of the paper's eq. (1): the per-link delay is
    Exp(λ), mean 1/λ seconds.  Table VI sweeps λ from 0.4 to 0.9.
    """

    rate: float = 0.8

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("rate must be positive", rate=self.rate)

    def delay(self, src: int, dst: int, rng: random.Random) -> Seconds:
        return rng.expovariate(self.rate)

    @property
    def mean(self) -> Seconds:
        return 1.0 / self.rate


@dataclass(frozen=True)
class TrickleLatency:
    """Legacy trickle spreading, approximated as quantized delays.

    Pre-2015 nodes forwarded queued announcements to one random peer
    every trickle interval, so the effective per-link delay is a random
    number of whole intervals: ``interval * Geometric(p)`` with ``p``
    the per-round selection probability (~1/peers).
    """

    interval: Seconds = 0.1
    peers: int = 8

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError("interval must be positive")
        if self.peers < 1:
            raise ConfigurationError("peers must be >= 1")

    def delay(self, src: int, dst: int, rng: random.Random) -> Seconds:
        rounds = 1
        p = 1.0 / self.peers
        while rng.random() > p:
            rounds += 1
            if rounds > 100 * self.peers:  # numerical guard
                break
        return rounds * self.interval


@dataclass(frozen=True)
class EmpiricalLatency:
    """Inverse-CDF sampler fit to measured delay percentiles.

    ``percentiles`` is the calibration table: ``(quantile, seconds)``
    anchor points of the measured cumulative distribution, quantiles
    strictly increasing in ``[0, 1]`` and delays non-decreasing.  A
    sample draws ``u ~ U[0, 1)`` and linearly interpolates the inverse
    CDF between anchors; ``u`` outside the anchored quantile range
    clamps to the first/last anchor (NumPy ``interp`` semantics), so
    the tails are flat beyond the published percentiles rather than
    extrapolated.

    The model serves both delay APIs: the scalar
    :class:`LatencyModel` protocol (``delay(src, dst, rng)``) for the
    event-driven simulator, and :meth:`sample_edge_ticks` — the
    vectorized per-edge path the graph engine's
    :meth:`~repro.netsim.graph.GraphSpec.with_delay_model` consumes,
    quantized by :func:`quantize_ticks`.
    """

    percentiles: Tuple[Tuple[float, Seconds], ...]

    def __post_init__(self) -> None:
        if len(self.percentiles) < 2:
            raise ConfigurationError(
                "at least two percentile anchors required",
                anchors=len(self.percentiles),
            )
        quantiles = [q for q, _ in self.percentiles]
        delays = [s for _, s in self.percentiles]
        if any(not 0.0 <= q <= 1.0 for q in quantiles):
            raise ConfigurationError(
                "quantiles must lie in [0, 1]", quantiles=tuple(quantiles)
            )
        if any(b <= a for a, b in zip(quantiles, quantiles[1:])):
            raise ConfigurationError(
                "quantiles must be strictly increasing",
                quantiles=tuple(quantiles),
            )
        if delays[0] < 0 or any(b < a for a, b in zip(delays, delays[1:])):
            raise ConfigurationError(
                "delays must be non-negative and non-decreasing",
                delays=tuple(delays),
            )

    def sample(self, u: float) -> Seconds:
        """Inverse CDF at ``u``: the delay whose quantile is ``u``."""
        quantiles = [q for q, _ in self.percentiles]
        delays = [s for _, s in self.percentiles]
        return float(np.interp(u, quantiles, delays))

    def delay(self, src: int, dst: int, rng: random.Random) -> Seconds:
        return self.sample(rng.random())

    def sample_edge_ticks(
        self,
        rng: np.random.Generator,
        size: int,
        tick_seconds: Seconds,
        max_ticks: Optional[int] = None,
    ) -> np.ndarray:
        """Vectorized per-edge delay draw, quantized to ticks.

        Draws ``size`` uniforms from ``rng``, maps them through the
        inverse CDF, and quantizes with the :func:`quantize_ticks`
        rule (nearest tick, ties to even).  ``max_ticks`` optionally
        caps the tail, bounding the delay queue.
        """
        if tick_seconds <= 0:
            raise ConfigurationError(
                "tick_seconds must be positive", tick=tick_seconds
            )
        if max_ticks is not None and max_ticks < 0:
            raise ConfigurationError(
                "max_ticks must be non-negative", max_ticks=max_ticks
            )
        quantiles = np.array([q for q, _ in self.percentiles])
        delays = np.array([s for _, s in self.percentiles])
        seconds = np.interp(rng.random(size), quantiles, delays)
        ticks = np.rint(seconds / tick_seconds).astype(np.int64)
        if max_ticks is not None:
            np.minimum(ticks, max_ticks, out=ticks)
        return ticks

    @property
    def median(self) -> Seconds:
        """The interpolated 50th-percentile delay."""
        return self.sample(0.5)


#: Block-propagation delay distribution of the paper's era, anchored
#: to the published measurement campaigns: the Bitcoin P2P vivisection
#: study (Ben Mariem et al.) reports a median of ~1.3 s for a block to
#: reach half the reachable network with a long measured tail (90th
#: percentile ~4 s, 99th ~9 s), consistent with the long-running
#: Decker–Wattenhofer-methodology propagation monitors.  These anchors
#: are the source percentiles EXPERIMENTS.md documents; under the
#: Li–Guo–Ren latency–security trade-off this distribution is the
#: network delay bound Δ.
BITCOIN_PROPAGATION_2019 = EmpiricalLatency(
    percentiles=(
        (0.10, 0.35),
        (0.25, 0.70),
        (0.50, 1.30),
        (0.75, 2.60),
        (0.90, 4.20),
        (0.99, 9.40),
    )
)

#: Named delay models selectable from the CLI (``--delay-model``);
#: names are stable identifiers that survive pickling across trial
#: workers, unlike the model objects themselves.
DELAY_MODELS = {
    "calibrated": BITCOIN_PROPAGATION_2019,
}
