"""Bitcoin protocol messages used by the simulator.

The subset mirrors what the paper says Bitnodes itself uses to probe
the network (§IV-A): inventory announcements (``inv``), data requests
(``getdata``), and the data-bearing ``block``/``tx`` messages, plus
``addr`` gossip for peer discovery.  Messages are tiny frozen
dataclasses; the simulator passes them by reference, so "serialization"
cost is zero and a 10k-node network stays tractable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple, Union

from ..blockchain.block import Block
from ..blockchain.tx import Transaction

__all__ = [
    "InvType",
    "InvMsg",
    "GetDataMsg",
    "BlockMsg",
    "TxMsg",
    "AddrMsg",
    "Message",
]


class InvType(enum.Enum):
    """What an inventory entry refers to."""

    BLOCK = "block"
    TX = "tx"


@dataclass(frozen=True)
class InvMsg:
    """Announcement that the sender has objects (by hash)."""

    inv_type: InvType
    hashes: Tuple[str, ...]


@dataclass(frozen=True)
class GetDataMsg:
    """Request for the full objects behind earlier inv hashes."""

    inv_type: InvType
    hashes: Tuple[str, ...]


@dataclass(frozen=True)
class BlockMsg:
    """Delivery of a full block."""

    block: Block


@dataclass(frozen=True)
class TxMsg:
    """Delivery of a full transaction."""

    tx: Transaction


@dataclass(frozen=True)
class AddrMsg:
    """Gossip of known peer addresses (node ids in the simulator)."""

    addresses: Tuple[int, ...]


@dataclass(frozen=True)
class GetTipMsg:
    """Ask a peer for its best-chain tip (BlockAware's recovery probe)."""


@dataclass(frozen=True)
class TipMsg:
    """Reply to :class:`GetTipMsg`: the sender's best tip."""

    tip_hash: str
    height: int


Message = Union[InvMsg, GetDataMsg, BlockMsg, TxMsg, AddrMsg, GetTipMsg, TipMsg]
