"""Node churn: the up/down dynamics the crawler observes.

§IV-C: at collection time 16.5% of nodes were down, and "the total
number of nodes in Bitcoin fluctuates between 8k-13k" (§V-B).  The
:class:`ChurnProcess` reproduces that as an alternating renewal process
per node: exponential up-times and down-times whose means fix the
steady-state availability.  Downed nodes stop answering (they miss
blocks and return lagging — one of the paper's sources of temporal
vulnerability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..errors import ConfigurationError
from ..types import Seconds

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

__all__ = ["ChurnConfig", "ChurnProcess"]


@dataclass(frozen=True)
class ChurnConfig:
    """Churn parameters.

    Attributes:
        mean_uptime: Mean time a node stays up (seconds).
        mean_downtime: Mean outage duration.  Steady-state availability
            is ``up/(up+down)``; the paper's 83.5% implies
            ``down ~ 0.2 * up``.
        churning_fraction: Share of nodes subject to churn (the rest
            are always-on; the paper's stable ~50% core).
    """

    mean_uptime: Seconds = 20 * 3600.0
    mean_downtime: Seconds = 4 * 3600.0
    churning_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_uptime <= 0 or self.mean_downtime <= 0:
            raise ConfigurationError("churn means must be positive")
        if not 0.0 <= self.churning_fraction <= 1.0:
            raise ConfigurationError("churning_fraction in [0,1]")

    @property
    def availability(self) -> float:
        """Steady-state probability a churning node is up."""
        return self.mean_uptime / (self.mean_uptime + self.mean_downtime)


class ChurnProcess:
    """Drives up/down transitions for a subset of a network's nodes."""

    def __init__(
        self,
        network: "Network",
        config: ChurnConfig = ChurnConfig(),
        node_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.network = network
        self.config = config
        rng = network.streams.stream("churn")
        if node_ids is not None:
            self.node_ids = list(node_ids)
        else:
            population = list(network.nodes)
            count = round(len(population) * config.churning_fraction)
            self.node_ids = rng.sample(population, count)
        self._rng = rng
        self._running = False
        self.transitions: Dict[int, int] = {nid: 0 for nid in self.node_ids}

    def start(self) -> None:
        """Arm the first transition for every churning node."""
        if self._running:
            return
        self._running = True
        for node_id in self.node_ids:
            self._schedule_next(node_id)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _schedule_next(self, node_id: int) -> None:
        node = self.network.node(node_id)
        mean = (
            self.config.mean_uptime if node.online else self.config.mean_downtime
        )
        delay = self._rng.expovariate(1.0 / mean)
        self.network.sim.schedule(delay, lambda: self._flip(node_id))

    def _flip(self, node_id: int) -> None:
        if not self._running:
            return
        node = self.network.node(node_id)
        node.online = not node.online
        self.transitions[node_id] += 1
        self._schedule_next(node_id)

    # ------------------------------------------------------------------
    def online_fraction(self) -> float:
        """Current up share among the churning nodes."""
        if not self.node_ids:
            return 1.0
        up = sum(1 for nid in self.node_ids if self.network.node(nid).online)
        return up / len(self.node_ids)

    def total_transitions(self) -> int:
        return sum(self.transitions.values())
