"""Transactions and the UTXO set.

The temporal attack's damage mechanism (paper §V-B, Implications) is
transaction reversal: when isolated nodes recover from the counterfeit
fork, "all transactions belonging to legitimate users in those blocks
will also be reversed. This will require a major update on the set of
all UTXOs at each node."  The :class:`UtxoSet` here supports exactly
that: applying a block's transactions, detecting double spends, and
reverting blocks during reorganizations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import DoubleSpendError, InvalidTransactionError

__all__ = ["OutPoint", "TxInput", "TxOutput", "Transaction", "UtxoSet"]


@dataclass(frozen=True)
class OutPoint:
    """Reference to a specific output of a specific transaction."""

    txid: str
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise InvalidTransactionError("output index negative", index=self.index)


@dataclass(frozen=True)
class TxInput:
    """A transaction input spending a previous output."""

    outpoint: OutPoint


@dataclass(frozen=True)
class TxOutput:
    """A transaction output assigning value to an owner."""

    owner: int
    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise InvalidTransactionError("output value negative", value=self.value)


@dataclass(frozen=True)
class Transaction:
    """A transaction: inputs consumed, outputs created.

    Coinbase transactions (block rewards) have no inputs and are marked
    via :attr:`coinbase`.  Identity is content-derived so identical
    transactions share a txid while any change produces a new one.
    """

    inputs: Tuple[TxInput, ...]
    outputs: Tuple[TxOutput, ...]
    coinbase: bool = False
    nonce: int = 0

    @classmethod
    def make_coinbase(cls, miner: int, value: int, nonce: int = 0) -> "Transaction":
        """Block-reward transaction paying ``value`` to ``miner``."""
        return cls(
            inputs=(),
            outputs=(TxOutput(owner=miner, value=value),),
            coinbase=True,
            nonce=nonce,
        )

    @classmethod
    def make_payment(
        cls,
        spend: Sequence[OutPoint],
        outputs: Sequence[TxOutput],
        nonce: int = 0,
    ) -> "Transaction":
        """Ordinary payment spending ``spend`` into ``outputs``."""
        return cls(
            inputs=tuple(TxInput(outpoint=op) for op in spend),
            outputs=tuple(outputs),
            coinbase=False,
            nonce=nonce,
        )

    def __post_init__(self) -> None:
        if self.coinbase and self.inputs:
            raise InvalidTransactionError("coinbase cannot have inputs")
        if not self.coinbase and not self.inputs:
            raise InvalidTransactionError("non-coinbase requires inputs")
        if not self.outputs:
            raise InvalidTransactionError("transaction requires outputs")
        spent = [inp.outpoint for inp in self.inputs]
        if len(set(spent)) != len(spent):
            # CVE-2018-17144 (cited in §V-D): Bitcoin clients crashed on
            # blocks with duplicate inputs; we reject them outright.
            raise InvalidTransactionError("duplicate inputs within transaction")

    @property
    def txid(self) -> str:
        payload = "|".join(
            [
                ",".join(f"{i.outpoint.txid}:{i.outpoint.index}" for i in self.inputs),
                ",".join(f"{o.owner}:{o.value}" for o in self.outputs),
                str(int(self.coinbase)),
                str(self.nonce),
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def total_output(self) -> int:
        return sum(output.value for output in self.outputs)

    def outpoints(self) -> List[OutPoint]:
        """The outputs this transaction creates, as spendable references."""
        return [OutPoint(self.txid, i) for i in range(len(self.outputs))]


class UtxoSet:
    """The set of unspent transaction outputs with reorg support.

    ``apply_transaction`` validates against double spends and value
    conservation; ``revert_transaction`` restores consumed outputs,
    which is what every node must do when a counterfeit fork is
    abandoned.  The set records enough bookkeeping (spent-output cache)
    to revert without external help.
    """

    def __init__(self) -> None:
        self._unspent: Dict[OutPoint, TxOutput] = {}
        # Outputs consumed by applied transactions, retained so reverts
        # can restore them: txid -> [(outpoint, output), ...]
        self._consumed: Dict[str, List[Tuple[OutPoint, TxOutput]]] = {}

    def __len__(self) -> int:
        return len(self._unspent)

    def __contains__(self, outpoint: OutPoint) -> bool:
        return outpoint in self._unspent

    def value_of(self, outpoint: OutPoint) -> int:
        try:
            return self._unspent[outpoint].value
        except KeyError:
            raise InvalidTransactionError(
                "unknown or spent outpoint", txid=outpoint.txid, index=outpoint.index
            ) from None

    def balance(self, owner: int) -> int:
        """Total unspent value held by ``owner``."""
        return sum(
            output.value for output in self._unspent.values() if output.owner == owner
        )

    def outpoints_of(self, owner: int) -> List[OutPoint]:
        """Spendable outpoints held by ``owner``."""
        return [
            outpoint
            for outpoint, output in self._unspent.items()
            if output.owner == owner
        ]

    @property
    def total_value(self) -> int:
        return sum(output.value for output in self._unspent.values())

    # ------------------------------------------------------------------
    def apply_transaction(self, tx: Transaction) -> None:
        """Validate and apply ``tx``; raises on double spends.

        Coinbase transactions mint value; ordinary transactions must not
        create value (fees — inputs exceeding outputs — are allowed and
        treated as burned for simplicity).
        """
        if tx.txid in self._consumed:
            raise InvalidTransactionError("transaction already applied", txid=tx.txid)
        consumed: List[Tuple[OutPoint, TxOutput]] = []
        if not tx.coinbase:
            input_value = 0
            for txin in tx.inputs:
                output = self._unspent.get(txin.outpoint)
                if output is None:
                    raise DoubleSpendError(
                        "input missing or already spent",
                        txid=txin.outpoint.txid,
                        index=txin.outpoint.index,
                    )
                consumed.append((txin.outpoint, output))
                input_value += output.value
            if tx.total_output > input_value:
                raise InvalidTransactionError(
                    "outputs exceed inputs",
                    inputs=input_value,
                    outputs=tx.total_output,
                )
        for outpoint, output in consumed:
            del self._unspent[outpoint]
        for index, output in enumerate(tx.outputs):
            self._unspent[OutPoint(tx.txid, index)] = output
        self._consumed[tx.txid] = consumed

    def revert_transaction(self, tx: Transaction) -> None:
        """Undo a previously-applied transaction (reorg support)."""
        if tx.txid not in self._consumed:
            raise InvalidTransactionError("transaction not applied", txid=tx.txid)
        for index in range(len(tx.outputs)):
            outpoint = OutPoint(tx.txid, index)
            if outpoint not in self._unspent:
                raise InvalidTransactionError(
                    "cannot revert: output already spent; revert spenders first",
                    txid=tx.txid,
                    index=index,
                )
        for index in range(len(tx.outputs)):
            del self._unspent[OutPoint(tx.txid, index)]
        for outpoint, output in self._consumed.pop(tx.txid):
            self._unspent[outpoint] = output

    def apply_block_txs(self, txs: Sequence[Transaction]) -> None:
        """Apply a block's transactions atomically (rollback on error)."""
        applied: List[Transaction] = []
        try:
            for tx in txs:
                self.apply_transaction(tx)
                applied.append(tx)
        except Exception:
            for tx in reversed(applied):
                self.revert_transaction(tx)
            raise

    def revert_block_txs(self, txs: Sequence[Transaction]) -> None:
        """Revert a block's transactions (in reverse order)."""
        for tx in reversed(list(txs)):
            self.revert_transaction(tx)

    def would_double_spend(self, tx: Transaction) -> bool:
        """Non-destructive double-spend check for mempool screening."""
        if tx.coinbase:
            return False
        return any(txin.outpoint not in self._unspent for txin in tx.inputs)
