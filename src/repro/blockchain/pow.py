"""Proof-of-work timing model.

Real PoW is memoryless: the time for a miner with hash share ``s`` to
find the next block is exponential with rate ``s / T_block``.  The
paper's temporal-attack simulation leans on exactly this property —
"isolated nodes naturally assume that block delays are due to network
issues... they do not know that new blocks are taking more time to
calculate due to the lower hash rate of the attacker" (§V-B).

:class:`MiningModel` samples those block-finding times;
:class:`DifficultySchedule` models retargeting so long-horizon
simulations keep a stable average interval.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..types import BITCOIN_BLOCK_INTERVAL, Seconds

__all__ = ["MiningModel", "DifficultySchedule"]


@dataclass
class DifficultySchedule:
    """Difficulty retargeting (Bitcoin: every 2016 blocks).

    Difficulty scales the expected block interval: at difficulty ``d``,
    the whole network (share 1.0) finds blocks at rate
    ``1 / (d * base_interval)``.  ``retarget`` adjusts difficulty so the
    observed interval converges back to the base interval, clamped to
    Bitcoin's 4x bounds.
    """

    base_interval: Seconds = BITCOIN_BLOCK_INTERVAL
    window: int = 2016
    difficulty: float = 1.0
    max_adjustment: float = 4.0

    def __post_init__(self) -> None:
        if self.base_interval <= 0:
            raise ConfigurationError("base_interval must be positive")
        if self.difficulty <= 0:
            raise ConfigurationError("difficulty must be positive")

    @property
    def target_interval(self) -> Seconds:
        """Expected network-wide block interval at current difficulty."""
        return self.base_interval * self.difficulty

    def retarget(self, observed_window_duration: Seconds) -> float:
        """Adjust difficulty from the duration of the last window.

        Returns the new difficulty.  A window mined faster than target
        raises difficulty proportionally (clamped), and vice versa —
        which is how an attacker segment with 30% hash power eventually
        re-stabilizes its counterfeit chain's interval.
        """
        expected = self.window * self.target_interval
        if observed_window_duration <= 0:
            raise ConfigurationError("window duration must be positive")
        ratio = expected / observed_window_duration
        ratio = max(1.0 / self.max_adjustment, min(self.max_adjustment, ratio))
        self.difficulty *= ratio
        return self.difficulty


@dataclass
class MiningModel:
    """Samples block-finding times for miners by hash share.

    Attributes:
        schedule: The difficulty schedule in force.
        rng: Source of randomness (a named stream from
            :class:`repro.rng.RngStreams`).
    """

    rng: random.Random
    schedule: DifficultySchedule = field(default_factory=DifficultySchedule)

    def rate_for_share(self, hash_share: float) -> float:
        """Block-finding rate (blocks/second) for ``hash_share``."""
        if not 0.0 < hash_share <= 1.0:
            raise ConfigurationError("hash share must be in (0, 1]", share=hash_share)
        return hash_share / self.schedule.target_interval

    def sample_block_time(self, hash_share: float) -> Seconds:
        """Time until a miner with ``hash_share`` finds the next block.

        Exponential with mean ``target_interval / hash_share``; the
        memorylessness means resampling after a chain switch is
        statistically indistinguishable from continuing, so the
        simulator may resample freely on reorgs.
        """
        rate = self.rate_for_share(hash_share)
        return self.rng.expovariate(rate)

    def expected_interval(self, hash_share: float) -> Seconds:
        """Mean block interval for an isolated segment with that share.

        A 30% attacker alone produces blocks every ~2000 s instead of
        600 s — the slowdown the paper says victims misattribute to
        network issues.
        """
        return self.schedule.target_interval / hash_share

    def winner(self, shares: Dict[int, float]) -> Tuple[int, Seconds]:
        """Sample which miner finds the next block and when.

        Draws one exponential per miner and returns the minimum — the
        standard competition-of-exponentials race.  ``shares`` maps
        miner id to hash share (shares need not sum to 1; missing hash
        power simply slows everyone down, as during a partition).
        """
        if not shares:
            raise ConfigurationError("no miners")
        best_id: Optional[int] = None
        best_time = math.inf
        for miner_id, share in sorted(shares.items()):
            t = self.sample_block_time(share)
            if t < best_time:
                best_time = t
                best_id = miner_id
        assert best_id is not None
        return best_id, best_time
