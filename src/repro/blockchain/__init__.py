"""Blockchain substrate: blocks, transactions, UTXO set, fork handling.

The temporal attacks in the paper revolve around nodes holding
*different* chain views: lagging nodes accept an attacker's counterfeit
branch, and recovery requires a reorganization that reverses the
attacker's transactions ("a major update on the set of all UTXOs at
each node", §V-B).  This package provides the pieces needed to model
that faithfully:

- :mod:`repro.blockchain.block` — hash-linked blocks and headers;
- :mod:`repro.blockchain.tx` — transactions and the UTXO set with
  double-spend detection and reorg-safe apply/revert;
- :mod:`repro.blockchain.chain` — the block tree with fork tracking,
  best-chain selection, and reorg computation;
- :mod:`repro.blockchain.pow` — the proof-of-work timing model
  (exponential block intervals proportional to hash share);
- :mod:`repro.blockchain.fork` — fork lifecycle bookkeeping.
"""

from .block import Block, BlockHeader, GENESIS_HASH, genesis_block
from .chain import BlockTree, ReorgEvent
from .fork import Fork, ForkTracker
from .pow import MiningModel, DifficultySchedule
from .tx import Transaction, TxInput, TxOutput, UtxoSet, OutPoint

__all__ = [
    "Block",
    "BlockHeader",
    "GENESIS_HASH",
    "genesis_block",
    "BlockTree",
    "ReorgEvent",
    "Fork",
    "ForkTracker",
    "MiningModel",
    "DifficultySchedule",
    "Transaction",
    "TxInput",
    "TxOutput",
    "OutPoint",
    "UtxoSet",
]
