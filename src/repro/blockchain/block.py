"""Blocks and block headers with cryptographic hash linking.

Blocks are immutable once constructed; the block hash commits to the
parent hash, height, miner, timestamp, and the merkle root of the
transaction list, so any tampering (e.g. an attacker rewriting history
for isolated nodes) changes identities and is detectable — exactly the
property the paper's simulator relied on with its "MD5 hash linked
chain of values" internal error check.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..errors import InvalidBlockError
from .tx import Transaction

__all__ = ["BlockHeader", "Block", "GENESIS_HASH", "genesis_block", "merkle_root"]

#: Parent hash of the genesis block.
GENESIS_HASH = "0" * 16


def _hash_payload(payload: str) -> str:
    """64-bit hex digest, as in the paper's simulator.

    The paper's R simulator maintained "a 64-bit MD5 hash linked chain";
    we keep the 64-bit width (16 hex chars) but derive it from SHA-256
    for better mixing.  Width is an internal detail: collisions at 2^32
    birthday bound are irrelevant at simulation scales (~1e6 blocks).
    """
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def merkle_root(txids: Sequence[str]) -> str:
    """Merkle root of a transaction-id list (Bitcoin-style pairing).

    Empty lists hash to a fixed sentinel; odd levels duplicate the last
    entry, as Bitcoin does.
    """
    if not txids:
        return _hash_payload("empty-merkle")
    level = list(txids)
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [
            _hash_payload(level[i] + level[i + 1]) for i in range(0, len(level), 2)
        ]
    return level[0]


@dataclass(frozen=True)
class BlockHeader:
    """The committed part of a block.

    Attributes:
        parent_hash: Hash of the parent block (``GENESIS_HASH`` for the
            genesis block).
        height: Distance from genesis (genesis = 0).
        miner_id: Identifier of the miner/pool that produced the block.
        timestamp: Simulation time (seconds) the block was found.
        merkle: Merkle root of the block's transactions.
        counterfeit: True for blocks forged by an attacker to mislead
            lagging nodes (temporal attack).  The flag does not affect
            validation — honest nodes cannot see it — but analyses use
            it to measure how far bogus state spread.
    """

    parent_hash: str
    height: int
    miner_id: int
    timestamp: float
    merkle: str = ""
    counterfeit: bool = False

    def __post_init__(self) -> None:
        if self.height < 0:
            raise InvalidBlockError("height must be non-negative", height=self.height)

    @property
    def hash(self) -> str:
        """Block hash committing to all header fields."""
        payload = (
            f"{self.parent_hash}|{self.height}|{self.miner_id}"
            f"|{self.timestamp:.6f}|{self.merkle}|{int(self.counterfeit)}"
        )
        return _hash_payload(payload)


@dataclass(frozen=True)
class Block:
    """A full block: header plus transactions.

    Construction validates that the header's merkle root matches the
    transaction list (pass ``merkle=""`` to have it computed).
    """

    header: BlockHeader
    transactions: Tuple[Transaction, ...] = ()

    @classmethod
    def create(
        cls,
        parent_hash: str,
        height: int,
        miner_id: int,
        timestamp: float,
        transactions: Sequence[Transaction] = (),
        counterfeit: bool = False,
    ) -> "Block":
        """Build a block, computing the merkle commitment."""
        txs = tuple(transactions)
        header = BlockHeader(
            parent_hash=parent_hash,
            height=height,
            miner_id=miner_id,
            timestamp=timestamp,
            merkle=merkle_root([tx.txid for tx in txs]),
            counterfeit=counterfeit,
        )
        return cls(header=header, transactions=txs)

    def __post_init__(self) -> None:
        expected = merkle_root([tx.txid for tx in self.transactions])
        if self.header.merkle and self.header.merkle != expected:
            raise InvalidBlockError(
                "merkle root mismatch",
                expected=expected,
                committed=self.header.merkle,
            )

    @property
    def hash(self) -> str:
        return self.header.hash

    @property
    def height(self) -> int:
        return self.header.height

    @property
    def parent_hash(self) -> str:
        return self.header.parent_hash

    @property
    def is_genesis(self) -> bool:
        return self.header.parent_hash == GENESIS_HASH and self.height == 0

    @property
    def counterfeit(self) -> bool:
        return self.header.counterfeit

    def extends(self, parent: "Block") -> bool:
        """Structural check that this block builds on ``parent``."""
        return (
            self.parent_hash == parent.hash and self.height == parent.height + 1
        )

    def __repr__(self) -> str:
        flag = " counterfeit" if self.counterfeit else ""
        return f"<Block h={self.height} {self.hash[:8]}..{flag}>"


def genesis_block(timestamp: float = 0.0) -> Block:
    """The canonical genesis block (miner_id -1, no transactions)."""
    return Block.create(
        parent_hash=GENESIS_HASH,
        height=0,
        miner_id=-1,
        timestamp=timestamp,
    )
