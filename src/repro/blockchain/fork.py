"""Fork lifecycle bookkeeping.

The paper validates its simulator by checking that forks behave like
the real network's: they arise when synchronization slips, persist for
a bounded window, and are "resolved within two or three block
intervals, with all nodes joining the longest chain" (§IV-B).  The
:class:`ForkTracker` observes a stream of reorg events (or per-node
tip reports) and derives those statistics: fork birth/death times,
depths, and whether an attack held a fork open longer than natural
churn would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..types import Seconds

__all__ = ["Fork", "ForkTracker"]


@dataclass
class Fork:
    """One fork's observed lifecycle.

    Attributes:
        fork_point: Hash of the last common block.
        born_at: Simulation time the competing tip was first observed.
        resolved_at: Time the fork died (None while live).
        max_depth: Deepest divergence observed (blocks past fork point).
        winning_tip: Tip hash that survived (None while live).
        counterfeit: Whether the losing branch contained attacker blocks.
    """

    fork_point: str
    born_at: Seconds
    resolved_at: Optional[Seconds] = None
    max_depth: int = 1
    winning_tip: Optional[str] = None
    counterfeit: bool = False

    @property
    def live(self) -> bool:
        return self.resolved_at is None

    @property
    def lifetime(self) -> Optional[Seconds]:
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.born_at

    def lifetime_in_block_intervals(self, block_interval: Seconds) -> Optional[float]:
        """Fork lifetime normalized by the block interval.

        The paper's validation target: natural forks resolve within 2–3
        block intervals; attack-sustained forks exceed that.
        """
        lifetime = self.lifetime
        if lifetime is None:
            return None
        return lifetime / block_interval


class ForkTracker:
    """Aggregates fork events into lifecycle records.

    Call :meth:`observe_fork` when a competing branch appears and
    :meth:`observe_resolution` when one side wins.  The tracker is
    deliberately decoupled from any particular tree implementation so
    both the event-driven simulator and the grid simulator can feed it.
    """

    def __init__(self) -> None:
        self._live: Dict[str, Fork] = {}  # fork_point -> fork
        self._resolved: List[Fork] = []

    def observe_fork(
        self,
        fork_point: str,
        time: Seconds,
        depth: int = 1,
        counterfeit: bool = False,
    ) -> Fork:
        """Record (or deepen) a live fork rooted at ``fork_point``."""
        fork = self._live.get(fork_point)
        if fork is None:
            fork = Fork(
                fork_point=fork_point,
                born_at=time,
                max_depth=depth,
                counterfeit=counterfeit,
            )
            self._live[fork_point] = fork
        else:
            fork.max_depth = max(fork.max_depth, depth)
            fork.counterfeit = fork.counterfeit or counterfeit
        return fork

    def observe_resolution(
        self, fork_point: str, time: Seconds, winning_tip: str
    ) -> Optional[Fork]:
        """Mark the fork at ``fork_point`` as resolved."""
        fork = self._live.pop(fork_point, None)
        if fork is None:
            return None
        fork.resolved_at = time
        fork.winning_tip = winning_tip
        self._resolved.append(fork)
        return fork

    # ------------------------------------------------------------------
    @property
    def live_forks(self) -> List[Fork]:
        return list(self._live.values())

    @property
    def resolved_forks(self) -> List[Fork]:
        return list(self._resolved)

    @property
    def total_forks(self) -> int:
        return len(self._live) + len(self._resolved)

    def max_depth_seen(self) -> int:
        """Deepest fork observed (real Bitcoin: up to 13, §IV-B)."""
        depths = [f.max_depth for f in self._resolved] + [
            f.max_depth for f in self._live.values()
        ]
        return max(depths, default=0)

    def mean_lifetime(self) -> Optional[Seconds]:
        lifetimes = [f.lifetime for f in self._resolved if f.lifetime is not None]
        if not lifetimes:
            return None
        return sum(lifetimes) / len(lifetimes)

    def counterfeit_forks(self) -> List[Fork]:
        """Forks that carried attacker blocks (temporal-attack product)."""
        return [f for f in self._resolved if f.counterfeit] + [
            f for f in self._live.values() if f.counterfeit
        ]

    def summary(self, block_interval: Seconds) -> Dict[str, float]:
        """Aggregate statistics used by validation tests and benches."""
        resolved = self._resolved
        lifetimes = [
            f.lifetime_in_block_intervals(block_interval)
            for f in resolved
            if f.lifetime is not None
        ]
        return {
            "total": float(self.total_forks),
            "live": float(len(self._live)),
            "resolved": float(len(resolved)),
            "max_depth": float(self.max_depth_seen()),
            "mean_lifetime_intervals": (
                sum(lifetimes) / len(lifetimes) if lifetimes else 0.0
            ),
        }
