"""The block tree: forks, best-chain selection, reorganizations.

Every simulated node owns a :class:`BlockTree`.  The tree accepts any
block whose parent is known (orphans are parked until the parent
arrives), tracks all tips, and selects the best chain by height with
first-seen tie-breaking — the longest-chain rule the paper's simulator
used to resolve forks "within two or three block intervals".

A :class:`ReorgEvent` describes a best-tip switch: which blocks left the
main chain and which joined.  The netsim node uses it to update its
UTXO view, and the analyses use it to count reversed (double-spendable)
transactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import InvalidBlockError, UnknownBlockError
from .block import Block, GENESIS_HASH

__all__ = ["BlockTree", "ReorgEvent"]


@dataclass(frozen=True)
class ReorgEvent:
    """A best-chain switch.

    Attributes:
        detached: Blocks removed from the main chain, tip-first.
        attached: Blocks added to the main chain, oldest-first.
        common_ancestor: Hash of the fork point both branches share.
    """

    detached: Tuple[Block, ...]
    attached: Tuple[Block, ...]
    common_ancestor: str

    @property
    def depth(self) -> int:
        """How many blocks were unwound (0 = plain extension)."""
        return len(self.detached)

    @property
    def is_extension(self) -> bool:
        return not self.detached


class BlockTree:
    """A node's view of all known blocks.

    The tree is rooted at a genesis block.  ``add_block`` connects
    blocks whose parent is present and parks the rest as orphans;
    when a parent arrives, its orphans are connected recursively.
    The best tip maximizes height; ties keep the incumbent (first
    seen), matching Bitcoin's behaviour and making fork resolution
    depend on propagation order — the dynamics the temporal attack
    exploits.
    """

    def __init__(self, genesis: Block) -> None:
        if not genesis.is_genesis:
            raise InvalidBlockError("root must be a genesis block")
        self._blocks: Dict[str, Block] = {genesis.hash: genesis}
        self._children: Dict[str, List[str]] = {genesis.hash: []}
        self._orphans: Dict[str, List[Block]] = {}  # parent_hash -> waiting blocks
        self._orphan_hashes: Set[str] = set()
        self._tips: Set[str] = {genesis.hash}
        self._best_tip: str = genesis.hash
        self.genesis = genesis

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._blocks

    def knows(self, block_hash: str) -> bool:
        """Whether the tree holds the block, connected *or* parked.

        Relay logic must treat parked orphans as already-received:
        re-accepting a duplicate orphan would re-park it and re-fire
        ancestry requests, amplifying into a message storm.
        """
        return block_hash in self._blocks or block_hash in self._orphan_hashes

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_hash: str) -> Block:
        try:
            return self._blocks[block_hash]
        except KeyError:
            raise UnknownBlockError("block not in tree", block_hash=block_hash) from None

    @property
    def best_tip(self) -> Block:
        return self._blocks[self._best_tip]

    @property
    def height(self) -> int:
        """Height of the best chain's tip."""
        return self.best_tip.height

    @property
    def tips(self) -> List[Block]:
        """All current chain tips (more than one = live fork)."""
        return [self._blocks[h] for h in self._tips]

    @property
    def num_orphans(self) -> int:
        return sum(len(waiting) for waiting in self._orphans.values())

    def children_of(self, block_hash: str) -> List[Block]:
        return [self._blocks[h] for h in self._children.get(block_hash, [])]

    def chain_from(self, tip_hash: str) -> List[Block]:
        """Blocks from genesis to ``tip_hash``, oldest first."""
        chain: List[Block] = []
        cursor = self.get(tip_hash)
        while True:
            chain.append(cursor)
            if cursor.is_genesis:
                break
            cursor = self.get(cursor.parent_hash)
        chain.reverse()
        return chain

    def main_chain(self) -> List[Block]:
        """The best chain, genesis first."""
        return self.chain_from(self._best_tip)

    def block_at_height(self, height: int) -> Optional[Block]:
        """Main-chain block at ``height`` (None if above the tip)."""
        if height > self.height or height < 0:
            return None
        cursor = self.best_tip
        while cursor.height > height:
            cursor = self.get(cursor.parent_hash)
        return cursor

    def is_on_main_chain(self, block_hash: str) -> bool:
        block = self.get(block_hash)
        anchor = self.block_at_height(block.height)
        return anchor is not None and anchor.hash == block_hash

    def lag_of(self, network_height: int) -> int:
        """How many blocks this view trails a network at ``network_height``."""
        return max(0, network_height - self.height)

    def counterfeit_on_main(self) -> int:
        """Counterfeit blocks currently on this view's main chain."""
        return sum(1 for block in self.main_chain() if block.counterfeit)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_block(self, block: Block) -> Optional[ReorgEvent]:
        """Insert ``block``; returns the reorg event if the tip moved.

        Unknown-parent blocks are parked as orphans and connected later;
        duplicate inserts are ignored (returns None).  Structural
        validation (height = parent height + 1) is enforced.

        One insert can connect a whole parked orphan chain; the event
        returned spans the *entire* tip movement (old best tip to final
        best tip), so UTXO bookkeeping sees every detached and attached
        block exactly once.
        """
        if block.hash in self._blocks or block.hash in self._orphan_hashes:
            return None
        if block.is_genesis:
            raise InvalidBlockError("tree already has a genesis block")
        if block.parent_hash not in self._blocks:
            self._orphans.setdefault(block.parent_hash, []).append(block)
            self._orphan_hashes.add(block.hash)
            return None
        old_tip = self.best_tip
        self._connect(block)
        new_tip = self.best_tip
        if new_tip.hash == old_tip.hash:
            return None
        return self._reorg_event(old_tip, new_tip)

    def _connect(self, block: Block) -> None:
        parent = self._blocks[block.parent_hash]
        if block.height != parent.height + 1:
            raise InvalidBlockError(
                "height must be parent height + 1",
                height=block.height,
                parent_height=parent.height,
            )
        self._blocks[block.hash] = block
        self._children[block.hash] = []
        self._children[block.parent_hash].append(block.hash)
        self._tips.discard(block.parent_hash)
        self._tips.add(block.hash)

        # Longest chain wins; ties keep the incumbent (first seen).
        if block.height > self.best_tip.height:
            self._best_tip = block.hash

        # Connect any orphans that were waiting for this block.
        for orphan in self._orphans.pop(block.hash, []):
            self._orphan_hashes.discard(orphan.hash)
            self._connect(orphan)

    def _reorg_event(self, old_tip: Block, new_tip: Block) -> ReorgEvent:
        """Compute detached/attached sets between two tips."""
        detached: List[Block] = []
        attached: List[Block] = []
        a, b = old_tip, new_tip
        while a.height > b.height:
            detached.append(a)
            a = self.get(a.parent_hash)
        while b.height > a.height:
            attached.append(b)
            b = self.get(b.parent_hash)
        while a.hash != b.hash:
            detached.append(a)
            attached.append(b)
            a = self.get(a.parent_hash)
            b = self.get(b.parent_hash)
        attached.reverse()
        return ReorgEvent(
            detached=tuple(detached),
            attached=tuple(attached),
            common_ancestor=a.hash,
        )

    # ------------------------------------------------------------------
    # Fork inspection
    # ------------------------------------------------------------------
    def fork_lengths(self) -> List[int]:
        """Length of every non-main branch, measured from its fork point.

        The paper notes real Bitcoin "forks have been observed up to a
        height of 13"; this reports the analogous statistic for a tree.
        """
        lengths = []
        for tip in self._tips:
            if tip == self._best_tip:
                continue
            length = 0
            cursor = self.get(tip)
            while not self.is_on_main_chain(cursor.hash):
                length += 1
                cursor = self.get(cursor.parent_hash)
            lengths.append(length)
        return lengths

    def missing_parents(self) -> List[str]:
        """Parent hashes the tree is waiting on (for getdata requests)."""
        return list(self._orphans)
