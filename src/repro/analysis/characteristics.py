"""Table I: node characteristics by address family.

Aggregates a snapshot into the paper's Table I layout — per address
type: node count, link-speed mean/std, latency-index mean/std,
uptime-index mean/std.  The paper's headline observation is reproduced
structurally: IPv4 and IPv6 look alike while Tor nodes pair a much
higher link speed with a much *lower* latency index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..crawler.snapshot import NetworkSnapshot, TypeStats
from ..types import AddressType

__all__ = ["TypeRow", "type_characteristics_table"]


@dataclass(frozen=True)
class TypeRow:
    """One rendered Table I row."""

    address_type: AddressType
    stats: TypeStats

    @property
    def label(self) -> str:
        return self.address_type.label


def type_characteristics_table(snapshot: NetworkSnapshot) -> List[TypeRow]:
    """Compute Table I from a snapshot (rows in the paper's order)."""
    rows = []
    for address_type in (AddressType.IPV4, AddressType.IPV6, AddressType.TOR):
        rows.append(
            TypeRow(
                address_type=address_type,
                stats=snapshot.type_stats(address_type),
            )
        )
    return rows
