"""Table V: the sustained-lag window optimization.

The paper formalizes the temporal attack's target selection as: *given
a timing constraint T, find the maximum number of vulnerable nodes
whose lagging time L(t) is at least T*, where L(t) is the time a node
needs to catch up once it lags at time t (§V-B).  A node has L(t) >= T
exactly when it stays >= b blocks behind throughout [t, t + T), so the
optimum is a max over sliding windows of the per-node sustained-lag
indicator — computed here with a cumulative-sum trick in O(samples x
nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..crawler.timeseries import ConsensusTimeSeries
from ..errors import AnalysisError

__all__ = ["VulnerableWindows", "max_vulnerable_nodes", "vulnerable_table"]

#: The paper's Table V axes.
DEFAULT_T_MINUTES: Tuple[int, ...] = (5, 10, 15, 20, 25, 30, 40, 70, 200)
DEFAULT_LAG_THRESHOLDS: Tuple[int, ...] = (1, 2, 5)


@dataclass(frozen=True)
class VulnerableWindows:
    """One Table V cell, with the witness window.

    Attributes:
        t_minutes: The timing constraint T.
        lag_threshold: Minimum blocks behind (1, 2, or 5).
        max_nodes: Maximum concurrently-vulnerable node count.
        at_time: Window start time achieving the maximum.
        total_nodes: Population size (for the percentage column).
    """

    t_minutes: int
    lag_threshold: int
    max_nodes: int
    at_time: float
    total_nodes: int

    @property
    def percentage(self) -> float:
        return 100.0 * self.max_nodes / self.total_nodes if self.total_nodes else 0.0


def max_vulnerable_nodes(
    series: ConsensusTimeSeries,
    lag_threshold: int,
    t_minutes: int,
) -> VulnerableWindows:
    """Maximum number of nodes lagging >= ``lag_threshold`` blocks for
    at least ``t_minutes`` minutes, over all window placements.

    Requires the series' sampling interval to divide the window evenly;
    the window length in samples is ``round(T / interval)``.
    """
    if lag_threshold < 1:
        raise AnalysisError("lag threshold must be >= 1", value=lag_threshold)
    if t_minutes <= 0:
        raise AnalysisError("window must be positive", minutes=t_minutes)
    if series.num_samples < 2:
        raise AnalysisError("series too short")
    interval = float(series.times[1] - series.times[0])
    window = max(1, round(t_minutes * 60.0 / interval))
    if window > series.num_samples:
        raise AnalysisError(
            "window longer than series",
            window_samples=window,
            samples=series.num_samples,
        )
    behind = (series.lags >= lag_threshold).astype(np.int32)
    # Sliding-window "all true" via cumulative sums: a node sustains the
    # lag over a window iff the window's sum equals the window length.
    csum = np.vstack(
        [np.zeros((1, behind.shape[1]), dtype=np.int32), np.cumsum(behind, axis=0)]
    )
    window_sums = csum[window:] - csum[:-window]
    sustained_counts = (window_sums == window).sum(axis=1)
    best = int(np.argmax(sustained_counts))
    return VulnerableWindows(
        t_minutes=t_minutes,
        lag_threshold=lag_threshold,
        max_nodes=int(sustained_counts[best]),
        at_time=float(series.times[best]),
        total_nodes=series.num_nodes,
    )


def vulnerable_table(
    series: ConsensusTimeSeries,
    t_values: Sequence[int] = DEFAULT_T_MINUTES,
    lag_thresholds: Sequence[int] = DEFAULT_LAG_THRESHOLDS,
) -> Dict[int, List[VulnerableWindows]]:
    """Full Table V: rows per T, one cell per lag threshold."""
    return {
        t: [max_vulnerable_nodes(series, b, t) for b in lag_thresholds]
        for t in t_values
    }
