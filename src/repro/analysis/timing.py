"""Table VI: the probabilistic isolation-time bound.

The paper models the attacker's per-victim connection time as
exponential with rate λ (diffusion spreading, eq. 1) and bounds the
probability of isolating ``m`` nodes within a total budget of T
seconds (eq. 5)::

    p <= b(m, T) = C(T, m) * (1 - exp(-λT/m))^m

derived via the Cauchy (AM-GM) inequality over the per-node timing
assignment and a union bound over the C(T, m) integer assignments.
``b`` is monotonically increasing in T, so for a target success
probability p the paper infers the minimum T by binary bisection —
reproduced exactly here (all arithmetic in log space; the reference
values of Table VI are matched to the second).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..errors import AnalysisError

__all__ = ["isolation_bound", "min_isolation_time", "timing_table"]


def isolation_bound(m: int, t_seconds: int, lam: float) -> float:
    """log of the union bound b(m, T) (eq. 5), in natural-log space.

    Returned in log space because b overflows floats rapidly (the
    binomial coefficient dominates once T > m); callers compare against
    ``log(p)``.
    """
    if m < 1:
        raise AnalysisError("m must be >= 1", m=m)
    if lam <= 0:
        raise AnalysisError("lambda must be positive", lam=lam)
    if t_seconds < m:
        return -math.inf  # fewer seconds than nodes: no valid assignment
    log_binomial = (
        math.lgamma(t_seconds + 1)
        - math.lgamma(m + 1)
        - math.lgamma(t_seconds - m + 1)
    )
    inner = 1.0 - math.exp(-lam * t_seconds / m)
    if inner <= 0.0:
        return -math.inf
    return log_binomial + m * math.log(inner)


def min_isolation_time(m: int, lam: float, p: float = 0.8) -> int:
    """Minimum integer T (seconds) with b(m, T) >= p — one Table VI cell.

    Monotonicity of b in T makes binary bisection exact; the upper
    bracket grows geometrically until the bound is exceeded.
    """
    if not 0.0 < p < 1.0:
        raise AnalysisError("p must be in (0,1)", p=p)
    target = math.log(p)
    low, high = m, max(2 * m, 16)
    while isolation_bound(m, high, lam) < target:
        high *= 2
        if high > 10**9:  # pragma: no cover - defensive
            raise AnalysisError("bound never reached", m=m, lam=lam)
    while low < high:
        mid = (low + high) // 2
        if isolation_bound(m, mid, lam) >= target:
            high = mid
        else:
            low = mid + 1
    return low


def timing_table(
    m_values: Sequence[int] = (100, 300, 500, 800, 1000, 1200, 1500),
    lambdas: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    p: float = 0.8,
) -> Dict[float, List[int]]:
    """Full Table VI: rows per λ, columns per m."""
    return {
        lam: [min_isolation_time(m, lam, p) for m in m_values] for lam in lambdas
    }
