"""Analyses reproducing the paper's tables and figures.

Each module regenerates one family of artifacts from the substrate
data (snapshots, time series, topologies):

- :mod:`repro.analysis.characteristics` — Table I;
- :mod:`repro.analysis.centralization` — Table II/III and Figure 3;
- :mod:`repro.analysis.hijack` — Figure 4 prefix-hijack cost curves;
- :mod:`repro.analysis.poolmap` — Table IV mining-pool mapping;
- :mod:`repro.analysis.consensus` — Figure 6 statistics;
- :mod:`repro.analysis.vulnerable` — Table V sustained-lag optimizer;
- :mod:`repro.analysis.timing` — Table VI isolation-time bound;
- :mod:`repro.analysis.synced` — Table VII / Figure 8 per-AS joins.
"""

from .centralization import (
    CentralizationChange,
    centralization_change,
    coverage_count,
    cdf_points,
    top_entities,
)
from .characteristics import type_characteristics_table
from .economics import AttackEconomics, EconomicModel
from .consensus import behind_fraction_after, consensus_pruning_stats
from .hijack import HijackCurve, hijack_curve, prefixes_for_fraction
from .poolmap import PoolMapping, map_pools
from .propagation import PropagationProbe, PropagationStats
from .synced import synced_as_table, synced_band_lines
from .timing import isolation_bound, min_isolation_time, timing_table
from .vulnerable import VulnerableWindows, max_vulnerable_nodes, vulnerable_table

__all__ = [
    "CentralizationChange",
    "centralization_change",
    "coverage_count",
    "cdf_points",
    "top_entities",
    "type_characteristics_table",
    "AttackEconomics",
    "EconomicModel",
    "behind_fraction_after",
    "consensus_pruning_stats",
    "HijackCurve",
    "hijack_curve",
    "prefixes_for_fraction",
    "PoolMapping",
    "map_pools",
    "PropagationProbe",
    "PropagationStats",
    "synced_as_table",
    "synced_band_lines",
    "isolation_bound",
    "min_isolation_time",
    "timing_table",
    "VulnerableWindows",
    "max_vulnerable_nodes",
    "vulnerable_table",
]
