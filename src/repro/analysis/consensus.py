"""Figure 6 statistics: consensus pruning over time.

Helpers over a :class:`~repro.crawler.timeseries.ConsensusTimeSeries`
that quantify the paper's §V-B observations: the share of nodes behind
a given lag at a given delay after block publication, and the pruning
profile between two consecutive blocks (Figure 6(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..crawler.timeseries import ConsensusTimeSeries
from ..errors import AnalysisError

__all__ = ["behind_fraction_after", "consensus_pruning_stats", "PruningStats"]


def behind_fraction_after(
    series: ConsensusTimeSeries,
    block_times: Sequence[float],
    delay_seconds: float,
    min_lag: int = 1,
) -> float:
    """Mean fraction of nodes >= ``min_lag`` behind, ``delay_seconds``
    after each block publication.

    Reproduces the abstract's headline: "even 5 minutes after the
    publication of a block, ~62.7% of nodes ... remain behind".
    Samples nearest to (block_time + delay) are used; blocks whose
    probe time falls outside the series are skipped.
    """
    if delay_seconds < 0:
        raise AnalysisError("delay must be non-negative")
    if not block_times:
        raise AnalysisError("no block times")
    times = series.times
    fractions: List[float] = []
    up = series.up_matrix()
    behind = series.lags >= min_lag
    for block_time in block_times:
        probe = block_time + delay_seconds
        if probe < times[0] or probe > times[-1]:
            continue
        index = int(np.argmin(np.abs(times - probe)))
        up_count = int(up[index].sum())
        if up_count == 0:
            continue
        fractions.append(float((behind[index] & up[index]).sum()) / up_count)
    if not fractions:
        raise AnalysisError("no probe landed inside the series")
    return float(np.mean(fractions))


@dataclass(frozen=True)
class PruningStats:
    """Summary of consensus pruning (Figure 6(c) shape checks).

    Attributes:
        peak_behind_fraction: Largest instantaneous behind share (the
            paper observes spots where ~90% of the network is 1-4
            blocks behind).
        mean_synced_fraction: Long-run synced share (~50%, Fig 6(a)).
        forever_behind_fraction: Share of nodes never synced during the
            series (the ~10% "no benefit" population).
    """

    peak_behind_fraction: float
    mean_synced_fraction: float
    forever_behind_fraction: float


def consensus_pruning_stats(series: ConsensusTimeSeries) -> PruningStats:
    """Compute the Figure 6 shape statistics for a series."""
    up = series.up_matrix()
    behind = (series.lags >= 1) & up
    up_counts = up.sum(axis=1)
    if not up_counts.any():
        raise AnalysisError("series has no up nodes")
    with np.errstate(divide="ignore", invalid="ignore"):
        behind_fraction = np.where(
            up_counts > 0, behind.sum(axis=1) / np.maximum(up_counts, 1), 0.0
        )
    synced_fraction = series.synced_fraction_series()
    ever_synced = ((series.lags == 0) & up).any(axis=0)
    observed = up.any(axis=0)
    forever_behind = float((observed & ~ever_synced).sum()) / max(
        int(observed.sum()), 1
    )
    return PruningStats(
        peak_behind_fraction=float(behind_fraction.max()),
        mean_synced_fraction=float(synced_fraction.mean()),
        forever_behind_fraction=forever_behind,
    )
