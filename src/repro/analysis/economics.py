"""The paper's asymmetric-vulnerability economics (§V-B implications).

    "With a market capitalization of o(10^11) USD and network
    configuration of o(10^4) nodes, each full node is worth o(10^7)
    USD.  However, the cost of disrupting the network is far less than
    the value being impacted, which makes Bitcoin an economically
    attractive target."

This module quantifies that asymmetry for each attack family: value at
risk per node, the attacker's effort in its native unit (prefixes,
hash-hours, exploits), and the resulting leverage ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..attacks.results import AttackResult
from ..errors import AnalysisError

__all__ = ["EconomicModel", "AttackEconomics"]

#: Market capitalization at the paper's writing (USD).
PAPER_MARKET_CAP = 110e9

#: Reachable full nodes in the paper's snapshot.
PAPER_NODE_COUNT = 13_635


@dataclass(frozen=True)
class AttackEconomics:
    """Economic summary of one attack execution.

    Attributes:
        value_at_risk: USD value represented by the victims.
        attack_cost: Estimated attacker outlay (USD).
        leverage: value_at_risk / attack_cost — the paper's asymmetry.
    """

    value_at_risk: float
    attack_cost: float

    @property
    def leverage(self) -> float:
        if self.attack_cost <= 0:
            raise AnalysisError("attack cost must be positive")
        return self.value_at_risk / self.attack_cost


@dataclass(frozen=True)
class EconomicModel:
    """Unit-cost assumptions for pricing attacks.

    Defaults are deliberately conservative order-of-magnitude figures;
    every analysis exposes them as parameters so sensitivity sweeps are
    one loop away.

    Attributes:
        market_cap: Network value (USD).
        node_count: Reachable full nodes sharing that value.
        cost_per_prefix_hijack: Operating cost of announcing and
            sustaining one bogus prefix (USD).
        cost_per_hash_share_hour: Cost of renting 1% of the network
            hash rate for one hour (USD).
        cost_per_exploit: Development/acquisition cost of one usable
            client exploit (USD).
    """

    market_cap: float = PAPER_MARKET_CAP
    node_count: int = PAPER_NODE_COUNT
    cost_per_prefix_hijack: float = 5_000.0
    cost_per_hash_share_hour: float = 20_000.0
    cost_per_exploit: float = 100_000.0

    @property
    def value_per_node(self) -> float:
        """The paper's o(10^7) USD per full node."""
        if self.node_count <= 0:
            raise AnalysisError("node count must be positive")
        return self.market_cap / self.node_count

    # ------------------------------------------------------------------
    def price_spatial(self, result: AttackResult) -> AttackEconomics:
        """Price a BGP hijack: effort = prefixes announced."""
        if result.attack not in ("spatial", "nation_state_block", "stratum_isolation"):
            raise AnalysisError("not a spatial-family result", attack=result.attack)
        cost = max(result.effort, 1.0) * self.cost_per_prefix_hijack
        return AttackEconomics(
            value_at_risk=result.num_victims * self.value_per_node,
            attack_cost=cost,
        )

    def price_temporal(
        self, result: AttackResult, duration_hours: float, hash_share: float
    ) -> AttackEconomics:
        """Price a counterfeit-feeding attack: effort = rented hash."""
        if result.attack not in ("temporal", "double_spend", "spatiotemporal"):
            raise AnalysisError("not a temporal-family result", attack=result.attack)
        if duration_hours <= 0 or not 0 < hash_share < 1:
            raise AnalysisError("invalid duration or share")
        cost = hash_share * 100 * self.cost_per_hash_share_hour * duration_hours
        return AttackEconomics(
            value_at_risk=result.num_victims * self.value_per_node,
            attack_cost=cost,
        )

    def price_logical(self, result: AttackResult) -> AttackEconomics:
        """Price a CVE-based partition: effort = exploits used."""
        if result.attack != "logical_crash":
            raise AnalysisError("not a logical result", attack=result.attack)
        cost = max(result.effort, 1.0) * self.cost_per_exploit
        return AttackEconomics(
            value_at_risk=result.num_victims * self.value_per_node,
            attack_cost=cost,
        )

    def asymmetry_report(self) -> Dict[str, float]:
        """The §V-B headline numbers."""
        return {
            "market_cap": self.market_cap,
            "node_count": float(self.node_count),
            "value_per_node": self.value_per_node,
        }
