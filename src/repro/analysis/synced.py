"""Table VII / Figure 8: synced nodes joined with their hosting ASes.

Figure 8(a) re-plots the Figure 6(b) day as three line series (synced,
1 behind, 2-4 behind); 8(b) and 8(c) break the synced series down by
the top hosting ASes, and Table VII ranks those ASes over the full day.
The spatio-temporal attacker uses this join to decide which ASes to
hijack (synced nodes) and which nodes to feed counterfeit blocks
(lagging nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..crawler.timeseries import ConsensusTimeSeries
from ..errors import AnalysisError
from ..topology.topology import Topology
from ..types import LagBand

__all__ = ["SyncedAsRow", "synced_as_table", "synced_band_lines"]


def synced_band_lines(
    series: ConsensusTimeSeries,
) -> Dict[str, np.ndarray]:
    """Figure 8(a): the three line series of the one-day snapshot."""
    bands = series.band_count_series()
    return {
        "synced": bands[LagBand.SYNCED],
        "behind_1": bands[LagBand.BEHIND_1],
        "behind_2_4": bands[LagBand.BEHIND_2_4],
    }


@dataclass(frozen=True)
class SyncedAsRow:
    """Table VII row.

    Attributes:
        asn: AS number.
        org_name: Hosting organization display name.
        mean_synced_nodes: Average synced-node count over the day.
        percentage: Share of all synced node-samples the AS hosts.
    """

    asn: int
    org_name: str
    mean_synced_nodes: int
    percentage: float


def synced_as_table(
    series: ConsensusTimeSeries,
    topology: Optional[Topology] = None,
    k: int = 5,
) -> List[SyncedAsRow]:
    """Rank the top-k ASes by synced nodes hosted over the series."""
    if series.node_asns is None:
        raise AnalysisError("series lacks per-node ASN mapping")
    synced = series.lags == 0
    total_synced_samples = int(synced.sum())
    if total_synced_samples == 0:
        raise AnalysisError("series has no synced samples")
    rows: List[SyncedAsRow] = []
    totals: Dict[int, int] = {}
    for asn in np.unique(series.node_asns):
        totals[int(asn)] = int(synced[:, series.node_asns == asn].sum())
    for asn, total in sorted(totals.items(), key=lambda kv: -kv[1])[:k]:
        org_name = f"AS{asn}"
        if topology is not None:
            asys = topology.ases.find(asn)
            if asys is not None:
                org_name = topology.orgs.get(asys.org_id).name
        rows.append(
            SyncedAsRow(
                asn=asn,
                org_name=org_name,
                mean_synced_nodes=total // series.num_samples,
                percentage=100.0 * total / total_synced_samples,
            )
        )
    return rows
