"""Centralization analyses: Table II, Table III, and Figure 3.

Works over any ``entity -> node count`` mapping, so the same functions
serve AS-level and organization-level views (the paper computes both
and finds organizations the tighter of the two).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple, TypeVar

from ..errors import AnalysisError

__all__ = [
    "top_entities",
    "coverage_count",
    "cdf_points",
    "CentralizationChange",
    "centralization_change",
]

K = TypeVar("K", bound=Hashable)


def top_entities(counts: Dict[K, int], k: int = 10) -> List[Tuple[K, int, float]]:
    """Top-k entities with node counts and percentage share (Table II).

    Ties break on the entity key's string form for determinism.
    """
    if not counts:
        raise AnalysisError("empty counts")
    total = sum(counts.values())
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))[:k]
    return [(key, count, 100.0 * count / total) for key, count in ranked]


def coverage_count(counts: Dict[K, int], fraction: float) -> int:
    """Smallest number of entities hosting >= ``fraction`` of all nodes.

    The paper's "8 ASes host 30%", "24 ASes host 50%" statistic.
    """
    if not 0.0 < fraction <= 1.0:
        raise AnalysisError("fraction must be in (0, 1]", fraction=fraction)
    if not counts:
        raise AnalysisError("empty counts")
    total = sum(counts.values())
    target = fraction * total
    cumulative = 0
    for rank, (_, count) in enumerate(
        sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0]))), start=1
    ):
        cumulative += count
        if cumulative >= target:
            return rank
    return len(counts)  # pragma: no cover - fraction <= 1 always reached


def cdf_points(counts: Dict[K, int]) -> List[Tuple[int, float]]:
    """Figure 3: cumulative node fraction vs entity rank.

    Returns ``(rank, cumulative_fraction)`` for every rank from 1 to
    the number of entities, sorted by descending node count.
    """
    if not counts:
        raise AnalysisError("empty counts")
    total = sum(counts.values())
    ordered = sorted(counts.values(), reverse=True)
    return [
        (rank, cumulative / total)
        for rank, cumulative in enumerate(itertools.accumulate(ordered), start=1)
    ]


@dataclass(frozen=True)
class CentralizationChange:
    """Table III row: entity counts for one coverage level, two years."""

    coverage: float
    entities_before: int
    entities_after: int

    @property
    def change_pct(self) -> float:
        """The paper's C = (N1 - N2) * 100 / N1."""
        if self.entities_before == 0:
            raise AnalysisError("baseline count is zero")
        return (
            (self.entities_before - self.entities_after)
            * 100.0
            / self.entities_before
        )


def centralization_change(
    before: int, after: int, coverage: float
) -> CentralizationChange:
    """Build a Table III row from two years' coverage counts."""
    if before <= 0 or after <= 0:
        raise AnalysisError("counts must be positive", before=before, after=after)
    return CentralizationChange(
        coverage=coverage, entities_before=before, entities_after=after
    )
