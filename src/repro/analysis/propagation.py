"""Block-propagation measurement (the Decker–Wattenhofer tie-in).

The paper grounds its temporal analysis in Decker & Wattenhofer's
finding that "propagation delay is the major factor that might result
in a fork" (§VII) and builds the span-ratio law on their delay
measurements (§V-B).  This module measures the analogous quantities on
a live simulation: the per-block coverage curve (fraction of nodes
holding a block as a function of time since its appearance), its
percentile summary, and the natural fork rate — the validation pair
for the D1/D2 ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..netsim.network import Network
from ..types import Seconds

__all__ = ["PropagationProbe", "PropagationStats"]


@dataclass(frozen=True)
class PropagationStats:
    """Summary of one probe block's spread.

    Attributes:
        t50: Seconds until 50% of online nodes held the block.
        t90: Seconds until 90% did.
        t99: Seconds until 99% did (None if never reached within the
            observation window — the stragglers the temporal attacker
            hunts).
        coverage_at_end: Final fraction reached.
    """

    t50: Optional[Seconds]
    t90: Optional[Seconds]
    t99: Optional[Seconds]
    coverage_at_end: float


class PropagationProbe:
    """Injects probe blocks into a network and times their spread.

    Unlike the crawler (which samples on a wall-clock grid), the probe
    samples at a fine interval relative to the expected delay, giving
    Decker–Wattenhofer-style curves.
    """

    def __init__(self, network: Network, sample_interval: Seconds = 0.5) -> None:
        if sample_interval <= 0:
            raise AnalysisError("sample interval must be positive")
        self.network = network
        self.sample_interval = sample_interval

    def measure_block(
        self,
        origin: int,
        window: Seconds = 120.0,
    ) -> Tuple[PropagationStats, List[Tuple[Seconds, float]]]:
        """Inject one block at ``origin`` and time its coverage.

        Returns the percentile summary and the raw (t, coverage) curve.
        The probe block extends the origin's current best tip, so it
        rides the normal inv/getdata relay.
        """
        from ..blockchain.block import Block

        net = self.network
        node = net.node(origin)
        if not node.online:
            raise AnalysisError("origin node is offline", node=origin)
        tip = node.tree.best_tip
        probe = Block.create(
            parent_hash=tip.hash,
            height=tip.height + 1,
            miner_id=-2,
            timestamp=net.now,
        )
        node.accept_block(probe)
        online = [n for n in net.nodes.values() if n.online]
        total = len(online)
        curve: List[Tuple[Seconds, float]] = []
        start = net.now
        elapsed = 0.0
        while elapsed < window:
            net.run_for(self.sample_interval)
            elapsed = net.now - start
            reached = sum(1 for n in online if probe.hash in n.tree)
            curve.append((elapsed, reached / total))
            if reached == total:
                break
        return self._summarize(curve), curve

    @staticmethod
    def _summarize(curve: Sequence[Tuple[Seconds, float]]) -> PropagationStats:
        def first_crossing(level: float) -> Optional[Seconds]:
            for t, coverage in curve:
                if coverage >= level:
                    return t
            return None

        return PropagationStats(
            t50=first_crossing(0.50),
            t90=first_crossing(0.90),
            t99=first_crossing(0.99),
            coverage_at_end=curve[-1][1] if curve else 0.0,
        )

    # ------------------------------------------------------------------
    def measure_many(
        self,
        origins: Sequence[int],
        window: Seconds = 120.0,
        spacing: Seconds = 60.0,
    ) -> List[PropagationStats]:
        """Probe from several origins, spaced out in simulation time."""
        stats = []
        for origin in origins:
            result, _ = self.measure_block(origin, window=window)
            stats.append(result)
            self.network.run_for(spacing)
        return stats

    @staticmethod
    def median_t90(stats: Sequence[PropagationStats]) -> Optional[Seconds]:
        """Median 90%-coverage time across probes (the headline delay)."""
        values = sorted(s.t90 for s in stats if s.t90 is not None)
        if not values:
            return None
        return values[len(values) // 2]
