"""Figure 4: BGP hijack cost curves per AS.

For a target AS, the attacker's greedy strategy hijacks the AS's most
populated prefixes first; the curve maps the number of hijacked
prefixes to the fraction of the AS's Bitcoin nodes captured.  The
paper's findings reproduced here: AS24940's 1,030 nodes fall with ~15
prefixes while AS16509 needs >140 despite hosting fewer nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import AnalysisError
from ..topology.prefix import Prefix, PrefixPool

__all__ = ["HijackCurve", "hijack_curve", "prefixes_for_fraction"]


@dataclass(frozen=True)
class HijackCurve:
    """The hijack cost curve of one AS.

    Attributes:
        asn: Target AS.
        total_prefixes: Prefixes the AS announces (Figure 4 legend).
        total_nodes: Bitcoin nodes the AS hosts.
        points: ``(hijacked_prefix_count, captured_fraction)`` pairs,
            greedy order, starting at (0, 0.0).
    """

    asn: int
    total_prefixes: int
    total_nodes: int
    points: Tuple[Tuple[int, float], ...]

    def fraction_at(self, num_hijacks: int) -> float:
        """Captured node fraction after ``num_hijacks`` hijacks."""
        if num_hijacks < 0:
            raise AnalysisError("hijack count negative", num=num_hijacks)
        index = min(num_hijacks, len(self.points) - 1)
        return self.points[index][1]

    def hijacks_for(self, fraction: float) -> Optional[int]:
        """Fewest hijacks capturing >= ``fraction`` (None if impossible)."""
        if not 0.0 < fraction <= 1.0:
            raise AnalysisError("fraction must be in (0,1]", fraction=fraction)
        for count, captured in self.points:
            if captured >= fraction:
                return count
        return None

    @property
    def cost_per_node_at_80pct(self) -> Optional[float]:
        """Prefixes per captured node at 80% coverage — the paper's
        effort-vs-advantage comparison between AS24940 and AS16509."""
        k = self.hijacks_for(0.80)
        if k is None or self.total_nodes == 0:
            return None
        return k / (0.80 * self.total_nodes)


def hijack_curve(pool: PrefixPool) -> HijackCurve:
    """Greedy hijack cost curve for an AS's prefix pool."""
    counts = pool.node_counts()
    total_nodes = pool.num_nodes
    if total_nodes == 0:
        raise AnalysisError("AS hosts no nodes", asn=pool.asn)
    fractions = [0.0]
    for cumulative in itertools.accumulate(count for _, count in counts):
        fractions.append(cumulative / total_nodes)
    points = tuple((k, fraction) for k, fraction in enumerate(fractions))
    return HijackCurve(
        asn=pool.asn,
        total_prefixes=pool.num_prefixes,
        total_nodes=total_nodes,
        points=points,
    )


def prefixes_for_fraction(pool: PrefixPool, fraction: float) -> List[Prefix]:
    """The actual prefixes the greedy attacker hijacks for ``fraction``.

    This is what :class:`~repro.attacks.spatial.SpatialAttack` announces.
    """
    if not 0.0 < fraction <= 1.0:
        raise AnalysisError("fraction must be in (0,1]", fraction=fraction)
    counts = pool.node_counts()
    total = pool.num_nodes
    if total == 0:
        raise AnalysisError("AS hosts no nodes", asn=pool.asn)
    chosen: List[Prefix] = []
    captured = 0
    for prefix, count in counts:
        if captured >= fraction * total:
            break
        chosen.append(prefix)
        captured += count
    return chosen
