"""Table IV: mining pools mapped to stratum ASes and organizations.

Joins the pool dataset (:mod:`repro.datagen.pools`) with the topology's
AS -> organization ownership to reproduce the paper's findings: the
top-5 pools (65.7% of hash rate) route through 3 organizations, and the
AliBaba group alone views >= 59.4% of mining data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..datagen.pools import (
    MINING_POOLS,
    MiningPoolRecord,
    group_shares,
    pool_asn_shares,
    top_pool_coverage,
)
from ..errors import AnalysisError
from ..topology.topology import Topology

__all__ = ["PoolMapping", "map_pools"]


@dataclass(frozen=True)
class PoolMapping:
    """The Table IV join result.

    Attributes:
        rows: (pool name, hash share, stratum ASNs, org names) per pool.
        asn_shares: Hash share transiting each stratum AS.
        group_shares_: Hash share viewed by each corporate group.
        covered_share: Aggregate share of the studied pools (0.657).
    """

    rows: Tuple[Tuple[str, float, Tuple[int, ...], Tuple[str, ...]], ...]
    asn_shares: Dict[int, float]
    group_shares_: Dict[str, float]
    covered_share: float

    def top_asns_for_share(self, share: float) -> List[int]:
        """Fewest ASes whose hijack isolates >= ``share`` of hash rate."""
        if not 0.0 < share <= 1.0:
            raise AnalysisError("share must be in (0,1]", share=share)
        chosen: List[int] = []
        captured = 0.0
        for asn, asn_share in sorted(
            self.asn_shares.items(), key=lambda kv: -kv[1]
        ):
            chosen.append(asn)
            captured += asn_share
            if captured >= share:
                return chosen
        raise AnalysisError(
            "mapped pools cannot reach requested share",
            requested=share,
            available=captured,
        )

    @property
    def dominant_group(self) -> Tuple[str, float]:
        """The organization group with the largest hash-rate view."""
        group, share = max(self.group_shares_.items(), key=lambda kv: kv[1])
        return group, share


def map_pools(
    topology: Optional[Topology] = None,
    pools: Tuple[MiningPoolRecord, ...] = MINING_POOLS,
) -> PoolMapping:
    """Build the Table IV mapping.

    When a topology is supplied, each stratum ASN is validated against
    it and organization names are read from the topology's registry
    (the cross-validation step the paper performed against the Digital
    Envoy dataset); otherwise the dataset's own names are used.
    """
    rows = []
    for pool in pools:
        org_names = pool.org_names
        if topology is not None:
            resolved = []
            for asn, fallback in zip(pool.stratum_asns, pool.org_names):
                asys = topology.ases.find(asn)
                if asys is None:
                    raise AnalysisError(
                        "stratum AS missing from topology", asn=asn, pool=pool.name
                    )
                resolved.append(topology.orgs.get(asys.org_id).name)
            org_names = tuple(resolved)
        rows.append((pool.name, pool.hash_share, pool.stratum_asns, org_names))
    return PoolMapping(
        rows=tuple(rows),
        asn_shares=pool_asn_shares(),
        group_shares_=group_shares(),
        covered_share=top_pool_coverage(),
    )
