"""Digest-class discovery: which dataclasses feed canonical digests.

A *digest class* is a class exposing a ``digest`` method (the
``ScenarioSpec`` contract: ``digest()`` hashes ``canonical_json()``
which serializes ``to_dict()``).  RPL402 requires every declared field
to enter that path — a field missing from the serialization means two
specs differing only in that knob share a digest, which is exactly how
a cached sweep serves the wrong scenario's summary.

Completeness is judged over the digest *closure*: the set of own-class
methods reachable from ``digest`` via ``self.<method>()`` calls.  A
closure that enumerates fields dynamically — ``dataclasses.fields``,
``dataclasses.asdict``, or ``vars`` applied to ``self`` — is complete
by construction (new fields join the digest automatically; this is the
pattern the repo's ``ScenarioSpec.to_dict`` uses and the reason it
survived PR 9 without hand-maintenance).  Otherwise every annotated
field must be mentioned as ``self.<field>`` somewhere in the closure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..audit.callgraph import function_body_walk
from ..audit.project import ClassNode, FunctionNode, ModuleRecord, Project

__all__ = ["DigestClass", "find_digest_classes"]

#: Calls that enumerate a dataclass's fields dynamically.
_DYNAMIC_ENUMERATORS = frozenset(
    {"dataclasses.fields", "dataclasses.asdict", "fields", "asdict", "vars"}
)


@dataclass
class DigestClass:
    """One digest-bearing class and its field-coverage account."""

    cls: ClassNode
    record: ModuleRecord
    #: annotated field -> declaration line.
    fields: Dict[str, int]
    #: own-class methods reachable from ``digest`` (including it).
    closure: List[FunctionNode]
    #: ``self.<attr>`` mentions anywhere in the closure.
    mentioned: Set[str]
    #: the closure enumerates fields dynamically (complete by construction).
    dynamic: bool

    def missing(self) -> List[str]:
        if self.dynamic:
            return []
        return sorted(f for f in self.fields if f not in self.mentioned)


def _class_def(record: ModuleRecord, cls: ClassNode) -> Optional[ast.ClassDef]:
    for stmt in record.info.tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == cls.name:
            return stmt
    return None


def _annotated_fields(classdef: ast.ClassDef) -> Dict[str, int]:
    fields: Dict[str, int] = {}
    for item in classdef.body:
        if isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            annotation = ast.dump(item.annotation)
            if "ClassVar" in annotation:
                continue
            fields[item.target.id] = item.lineno
    return fields


def _digest_closure(
    record: ModuleRecord, cls: ClassNode
) -> List[FunctionNode]:
    start = record.functions.get(f"{cls.name}.digest")
    if start is None:
        return []
    closure: List[FunctionNode] = []
    queue = [start]
    seen: Set[str] = set()
    while queue:
        fn = queue.pop(0)
        if fn.qualname in seen:
            continue
        seen.add(fn.qualname)
        closure.append(fn)
        for node in function_body_walk(record, fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                sibling = record.functions.get(f"{cls.name}.{func.attr}")
                if sibling is not None:
                    queue.append(sibling)
    return closure


def find_digest_classes(project: Project) -> List[DigestClass]:
    """Every digest-bearing annotated class, deterministically ordered."""
    found: List[DigestClass] = []
    for name in sorted(project.modules):
        record = project.modules[name]
        for cls_name in sorted(record.classes):
            cls = record.classes[cls_name]
            if f"{cls.name}.digest" not in record.functions:
                continue
            classdef = _class_def(record, cls)
            if classdef is None:
                continue
            fields = _annotated_fields(classdef)
            if not fields:
                continue  # not dataclass-shaped; nothing to enumerate
            closure = _digest_closure(record, cls)
            mentioned: Set[str] = set()
            dynamic = False
            for fn in closure:
                for node in function_body_walk(record, fn):
                    if (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                    ):
                        mentioned.add(node.attr)
                    elif isinstance(node, ast.Call):
                        canonical = record.info.resolve(node.func)
                        if canonical in _DYNAMIC_ENUMERATORS and any(
                            isinstance(arg, ast.Name) and arg.id == "self"
                            for arg in node.args
                        ):
                            dynamic = True
            found.append(
                DigestClass(
                    cls=cls,
                    record=record,
                    fields=fields,
                    closure=closure,
                    mentioned=mentioned,
                    dynamic=dynamic,
                )
            )
    return found
