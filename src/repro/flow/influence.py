"""Inter-procedural parameter-influence summaries (may-flow fixpoint).

For every function in the project, compute which of its parameters can
influence a trial's observable result, and *how*:

- ``"return"`` — the parameter may flow into the function's returned
  value (through local derivations, container mutation, or calls whose
  resolved callee's own summary says the bound parameter influences
  *its* return);
- ``"rng"`` — the parameter may flow into an RNG stream label or seed
  derivation (``derive_seed``, ``RngStreams.stream``, ``default_rng``,
  ...): even when the derived seed never syntactically reaches the
  return, it governs every draw downstream;
- ``"engine"`` — the parameter may flow into engine/simulator/spec
  construction (``TrialEngine(...)``, ``*Config``/``*Spec`` classes,
  ``make_simulator``-style factories), which selects the code that
  produces the result.

Summaries start empty and grow monotonically (least fixpoint over the
may-call structure, the same discipline as RPL202's seed-flow): each
pass re-derives every function's kinds using the current summaries of
its resolved callees, until nothing changes.  Callees that cannot be
resolved (registry dispatch, engine methods, stdlib) are treated
conservatively — every argument may influence the result.

The same pass computes per-function **hazard returns**: whether a
function may return a repr-unstable value (a set, lambda, generator,
or bare object — RPL106's hazard set), directly or through a helper.
RPL405 uses this to catch non-canonical values flowing into key
material through an intervening call.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from ..audit.callgraph import function_body_walk
from ..audit.project import MODULE_BODY, Project
from .dataflow import (
    RETURN,
    FunctionFlow,
    backward_closure,
    collect_flow,
    effective_derivations,
)

__all__ = [
    "ENGINE_SINK_RE",
    "INFLUENCE_KINDS",
    "InfluenceSummary",
    "RNG_SINK_RE",
    "build_flows",
    "build_influence",
]

#: The three ways a parameter can matter to a cached result.
INFLUENCE_KINDS = ("return", "rng", "engine")

#: Call names that consume seeds or stream labels.
RNG_SINK_RE = re.compile(
    r"(^|\.)(derive_seed|sweep_seed|default_rng|numpy_stream|stream|"
    r"RngStreams|Random|SeedSequence|seed)($|\.)"
)

#: Constructors/factories that select simulation behavior.
ENGINE_SINK_RE = re.compile(
    r"(Engine|Simulator|Config|Spec)$|(^|\.)(make|build)_\w*(engine|simulator|sim)$"
)


@dataclass
class InfluenceSummary:
    """What one function's parameters can reach."""

    #: parameter -> subset of :data:`INFLUENCE_KINDS` (empty = inert).
    kinds: Dict[str, Set[str]] = field(default_factory=dict)
    #: description of a repr-unstable value this function may return.
    hazard_return: Optional[str] = None

    def influencing(self) -> Set[str]:
        return {param for param, kinds in self.kinds.items() if kinds}


def build_flows(project: Project) -> Dict[str, FunctionFlow]:
    """Local dataflow for every real function (module bodies excluded)."""
    flows: Dict[str, FunctionFlow] = {}
    for record in project.modules.values():
        for fn in record.functions.values():
            if fn.qualname == MODULE_BODY:
                continue
            flows[fn.fq] = collect_flow(project, record, fn)
    return flows


def _sink_seeds(
    flow: FunctionFlow,
    summaries: Dict[str, InfluenceSummary],
    kind: str,
    pattern,
) -> Set[str]:
    """Names feeding a sink of ``kind``, directly or via callee params."""
    seeds: Set[str] = set()
    for call in flow.calls + [c for d in flow.derivations for c in d.calls]:
        if pattern.search(call.callee):
            seeds |= set(call.all_names)
            continue
        summary = summaries.get(call.callee)
        if summary is None:
            continue
        for param, names in call.bindings:
            if param is not None and kind in summary.kinds.get(param, set()):
                seeds |= names
    return seeds


def _external_sink_seeds(flow: FunctionFlow, pattern) -> Set[str]:
    """Names feeding *unresolved* sink calls (matched by call text)."""
    seeds: Set[str] = set()
    for node in function_body_walk(flow.record, flow.fn):
        if not isinstance(node, ast.Call):
            continue
        canonical = flow.record.info.resolve(node.func)
        if canonical is None:
            parts = flow.record.info.imports.dotted_parts(node.func)
            canonical = ".".join(parts) if parts else None
        if canonical is None or not pattern.search(canonical):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            seeds |= {
                sub.id for sub in ast.walk(arg) if isinstance(sub, ast.Name)
            }
    return seeds


def _influential_lookup(
    summaries: Dict[str, InfluenceSummary],
) -> Callable[[str, str], Optional[Set[str]]]:
    def influential(callee: str, kind: str) -> Optional[Set[str]]:
        if kind != "function":
            return None  # constructed objects escape tracking
        summary = summaries.get(callee)
        if summary is None:
            return None
        return summary.influencing()

    return influential


def _summarize(
    flow: FunctionFlow,
    summaries: Dict[str, InfluenceSummary],
    rng_external: Set[str],
    engine_external: Set[str],
) -> InfluenceSummary:
    influential = _influential_lookup(summaries)
    derivations = effective_derivations(flow, influential)
    params = [p for p in flow.fn.params if p not in ("self", "cls")]

    summary = InfluenceSummary(kinds={p: set() for p in params})
    return_closure = backward_closure(derivations, {RETURN})
    for param in params:
        if param in return_closure:
            summary.kinds[param].add("return")

    for kind, pattern, external in (
        ("rng", RNG_SINK_RE, rng_external),
        ("engine", ENGINE_SINK_RE, engine_external),
    ):
        seeds = _sink_seeds(flow, summaries, kind, pattern) | external
        if not seeds:
            continue
        closure = backward_closure(derivations, seeds)
        for param in params:
            if param in closure:
                summary.kinds[param].add(kind)

    # Hazard returns: a repr-unstable value reaching the return flow,
    # built locally or produced by a helper that returns one.
    for targets, _sources, derivation in derivations:
        if not targets & return_closure:
            continue
        if derivation.hazards:
            summary.hazard_return = derivation.hazards[0]
            break
        for call in derivation.calls:
            helper = summaries.get(call.callee)
            if helper is not None and helper.hazard_return is not None:
                summary.hazard_return = (
                    f"{helper.hazard_return} via helper '{call.callee}'"
                )
                break
        if summary.hazard_return is not None:
            break
    return summary


def build_influence(
    project: Project, flows: Optional[Dict[str, FunctionFlow]] = None
) -> Dict[str, InfluenceSummary]:
    """Least-fixpoint influence summaries for every project function."""
    if flows is None:
        flows = build_flows(project)
    # External (unresolved) sink name sets are summary-independent.
    rng_external = {
        fq: _external_sink_seeds(flow, RNG_SINK_RE)
        for fq, flow in flows.items()
    }
    engine_external = {
        fq: _external_sink_seeds(flow, ENGINE_SINK_RE)
        for fq, flow in flows.items()
    }
    summaries: Dict[str, InfluenceSummary] = {}
    for _round in range(20):
        changed = False
        for fq in sorted(flows):
            updated = _summarize(
                flows[fq], summaries, rng_external[fq], engine_external[fq]
            )
            current = summaries.get(fq)
            if (
                current is None
                or current.kinds != updated.kinds
                or current.hazard_return != updated.hazard_return
            ):
                summaries[fq] = updated
                changed = True
        if not changed:
            break
    return summaries
