"""Per-function dataflow facts: derivations, call bindings, cache calls.

Every RPL4xx rule reasons over the same flow-insensitive local model of
one function:

- a **derivation** ``targets <- sources`` for every binding statement
  (assignments, augmented assignments, subscript/attribute stores,
  loop targets, ``with ... as`` bindings, in-place mutator calls such
  as ``d.update(v)``), plus one pseudo-derivation per ``return``
  statement targeting :data:`RETURN`;
- a **bound call** for every call that resolves to an intra-repo
  function or class, mapping each argument expression's names onto the
  callee's parameters — the hook the inter-procedural fixpoint
  (:mod:`repro.flow.influence`) uses to propagate influence precisely
  instead of assuming every argument matters;
- the function's **cache calls** (``cache_key(...)`` or a
  ``.get/.put/.key/.entry_path/.discard`` method on a cache-shaped
  receiver, the same heuristic the per-file RPL106 rule uses) with
  their key-material argument names.

One asymmetry is deliberate: any value produced *by* a cache call
contributes no sources (``payload = cache.get(...)`` derives from
nothing).  A cache hit's content is governed by the key itself, so the
hit path must not count as parameter influence — otherwise every
boundary function's ``cache`` handle would flag itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..audit.project import MODULE_BODY, FunctionNode, ModuleRecord, Project

__all__ = [
    "BoundCall",
    "CacheCall",
    "Derivation",
    "FunctionFlow",
    "RETURN",
    "backward_closure",
    "collect_flow",
    "effective_derivations",
    "hazard_of",
    "param_linenos",
    "resolve_call",
]

#: Pseudo-target naming a function's returned value in derivations.
RETURN = "<return>"

#: ResultCache's key-consuming surface (kept in sync with RPL106).
_CACHE_METHODS = frozenset({"get", "put", "key", "entry_path", "discard"})

#: In-place mutators: ``base.append(v)`` derives ``base`` from ``v``.
_MUTATOR_METHODS = frozenset(
    {"append", "extend", "add", "update", "insert", "setdefault", "appendleft"}
)


def hazard_of(record: ModuleRecord, node: ast.AST) -> Optional[str]:
    """Repr-instability hazard of one expression node (RPL106's set)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set (iteration-order-dependent repr)"
    if isinstance(node, ast.Lambda):
        return "lambda (memory-address repr)"
    if isinstance(node, ast.GeneratorExp):
        return "generator (memory-address repr)"
    if isinstance(node, ast.Call):
        canonical = record.info.resolve(node.func)
        if canonical in ("set", "frozenset"):
            return f"{canonical}() (iteration-order-dependent repr)"
        if canonical == "object":
            return "object() (memory-address repr)"
    return None


@dataclass(frozen=True)
class BoundCall:
    """One call resolved to an intra-repo symbol, arguments bound."""

    callee: str  # fully qualified function/class id
    kind: str  # ``"function"`` or ``"class"``
    #: (callee parameter or None when unmappable, names in the argument)
    bindings: Tuple[Tuple[Optional[str], FrozenSet[str]], ...]
    all_names: FrozenSet[str]
    line: int
    col: int


@dataclass(frozen=True)
class CacheCall:
    """One cache-key-consuming call and its key-material names."""

    desc: str  # ``cache_key()`` or ``.get()`` etc.
    key_names: FrozenSet[str]  # names in the key-material arguments
    receiver: Optional[str]  # terminal receiver name (``cache``/``self``)
    node: ast.Call
    line: int
    col: int


@dataclass(frozen=True)
class Derivation:
    """``targets`` may carry information from ``sources`` (+ calls)."""

    targets: FrozenSet[str]
    sources: FrozenSet[str]
    calls: Tuple[BoundCall, ...]
    hazards: Tuple[str, ...]
    line: int
    col: int


@dataclass
class FunctionFlow:
    """The complete local dataflow account of one function."""

    fn: FunctionNode
    record: ModuleRecord
    derivations: List[Derivation] = field(default_factory=list)
    #: every resolved call anywhere in the body (sink propagation).
    calls: List[BoundCall] = field(default_factory=list)
    cache_calls: List[CacheCall] = field(default_factory=list)
    param_lines: Dict[str, int] = field(default_factory=dict)


def _class_of(fn: FunctionNode) -> Optional[str]:
    if "." in fn.qualname and fn.qualname != MODULE_BODY:
        return fn.qualname.split(".", 1)[0]
    return None


def resolve_call(
    project: Project,
    record: ModuleRecord,
    own_class: Optional[str],
    node: ast.Call,
):
    """Resolve one call to a project symbol (``self.m()`` included)."""
    func = node.func
    if (
        own_class is not None
        and isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("self", "cls")
    ):
        sibling = record.functions.get(f"{own_class}.{func.attr}")
        if sibling is not None:
            return ("function", sibling)
    canonical = record.info.resolve(func)
    if canonical is None:
        return None
    return project.resolve_local(record, canonical)


def _names_in(node: ast.AST) -> Set[str]:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


def _bind_call(
    project: Project,
    record: ModuleRecord,
    own_class: Optional[str],
    node: ast.Call,
) -> Optional[BoundCall]:
    target = resolve_call(project, record, own_class, node)
    if target is None or target[0] not in ("function", "class"):
        return None
    kind, symbol = target
    params = list(symbol.params if kind == "function" else symbol.init_params)
    if (
        kind == "function"
        and params
        and params[0] in ("self", "cls")
        and isinstance(node.func, ast.Attribute)
    ):
        params = params[1:]
    bindings: List[Tuple[Optional[str], FrozenSet[str]]] = []
    all_names: Set[str] = set()
    for position, arg in enumerate(node.args):
        names = frozenset(_names_in(arg))
        all_names |= names
        if isinstance(arg, ast.Starred):
            bindings.append((None, names))
            continue
        param = params[position] if position < len(params) else None
        bindings.append((param, names))
    for keyword in node.keywords:
        names = frozenset(_names_in(keyword.value))
        all_names |= names
        param = keyword.arg if keyword.arg in params else None
        bindings.append((param, names))
    return BoundCall(
        callee=symbol.fq,
        kind=kind,
        bindings=tuple(bindings),
        all_names=frozenset(all_names),
        line=node.lineno,
        col=node.col_offset,
    )


def _cache_call(
    project: Project,
    record: ModuleRecord,
    own_class: Optional[str],
    node: ast.Call,
) -> Optional[CacheCall]:
    func = node.func
    canonical = record.info.resolve(func)
    desc: Optional[str] = None
    receiver: Optional[str] = None
    if canonical and canonical.split(".")[-1] == "cache_key":
        desc = "cache_key()"
    elif isinstance(func, ast.Attribute) and func.attr in _CACHE_METHODS:
        base = func.value
        if isinstance(base, ast.Call):
            base_canonical = record.info.resolve(base.func)
            if base_canonical and base_canonical.split(".")[-1] == "ResultCache":
                desc = f".{func.attr}()"
        parts = record.info.imports.dotted_parts(base)
        if desc is None and parts:
            if "cache" in parts[-1].lower():
                desc = f".{func.attr}()"
                receiver = parts[-1]
            elif (
                parts[0] in ("self", "cls")
                and own_class is not None
                and "cache" in own_class.lower()
            ):
                # Methods of a *Cache class calling their own key surface.
                desc = f".{func.attr}()"
                receiver = parts[0]
    if desc is None:
        return None
    # ``.put(experiment_id, config, seed, payload)`` stores the payload
    # *under* the key; only the first three arguments are key material.
    args = list(node.args)
    keywords = list(node.keywords)
    if desc == ".put()":
        args = args[:3]
        keywords = [kw for kw in keywords if kw.arg != "payload"]
    key_names: Set[str] = set()
    for arg in args + [kw.value for kw in keywords]:
        key_names |= _names_in(arg)
    return CacheCall(
        desc=desc,
        key_names=frozenset(key_names),
        receiver=receiver,
        node=node,
        line=node.lineno,
        col=node.col_offset,
    )


def _target_names(target: ast.expr) -> Set[str]:
    """Names bound (or mutated through) by one assignment target."""
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names |= _target_names(element)
    elif isinstance(target, ast.Starred):
        names |= _target_names(target.value)
    elif isinstance(target, (ast.Subscript, ast.Attribute)):
        # ``x[k] = v`` / ``x.f = v`` mutate ``x``: derive the base.
        base = target.value
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if isinstance(base, ast.Name):
            names.add(base.id)
    return names


class _ValueScan:
    """Names/hazards/bound-calls of one value expression.

    Cache-call subtrees are skipped entirely (the hit-path exclusion);
    resolved intra-repo calls contribute a :class:`BoundCall` instead
    of raw names, so the fixpoint can filter by the callee's actual
    influence; everything else contributes its names wholesale.
    """

    def __init__(
        self,
        project: Project,
        record: ModuleRecord,
        own_class: Optional[str],
    ) -> None:
        self.project = project
        self.record = record
        self.own_class = own_class
        self.sources: Set[str] = set()
        self.calls: List[BoundCall] = []
        self.hazards: List[str] = []

    def visit(self, node: ast.AST, collect_names: bool = True) -> None:
        if isinstance(node, ast.Call):
            if (
                _cache_call(self.project, self.record, self.own_class, node)
                is not None
            ):
                return  # hit-path: governed by the key, not the arguments
            hazard = hazard_of(self.record, node)
            if hazard is not None:
                self.hazards.append(hazard)
            bound = _bind_call(self.project, self.record, self.own_class, node)
            if bound is not None:
                self.calls.append(bound)
                for child in ast.iter_child_nodes(node):
                    self.visit(child, collect_names=False)
                return
        else:
            hazard = hazard_of(self.record, node)
            if hazard is not None:
                self.hazards.append(hazard)
        if isinstance(node, ast.Name) and collect_names:
            self.sources.add(node.id)
        for child in ast.iter_child_nodes(node):
            self.visit(child, collect_names)


def _derive(
    project: Project,
    record: ModuleRecord,
    own_class: Optional[str],
    targets: Set[str],
    value: ast.AST,
    line: int,
    col: int,
    extra_sources: Set[str] = frozenset(),
) -> Optional[Derivation]:
    if not targets:
        return None
    scan = _ValueScan(project, record, own_class)
    scan.visit(value)
    return Derivation(
        targets=frozenset(targets),
        sources=frozenset(scan.sources | set(extra_sources)),
        calls=tuple(scan.calls),
        hazards=tuple(scan.hazards),
        line=line,
        col=col,
    )


def param_linenos(record: ModuleRecord, fn: FunctionNode) -> Dict[str, int]:
    """Source line of each parameter in the function's signature."""
    for stmt in ast.walk(record.info.tree):
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.lineno == fn.lineno
        ):
            args = stmt.args
            every = (
                list(getattr(args, "posonlyargs", []))
                + list(args.args)
                + list(args.kwonlyargs)
            )
            return {a.arg: a.lineno for a in every}
    return {}


def collect_flow(
    project: Project, record: ModuleRecord, fn: FunctionNode
) -> FunctionFlow:
    """Build the complete local dataflow account of one function."""
    from ..audit.callgraph import function_body_walk

    own_class = _class_of(fn)
    flow = FunctionFlow(
        fn=fn, record=record, param_lines=param_linenos(record, fn)
    )

    def add(
        targets: Set[str],
        value: ast.AST,
        node: ast.AST,
        extra: Set[str] = frozenset(),
    ) -> None:
        derivation = _derive(
            project,
            record,
            own_class,
            targets,
            value,
            getattr(node, "lineno", fn.lineno),
            getattr(node, "col_offset", 0),
            extra_sources=extra,
        )
        if derivation is not None:
            flow.derivations.append(derivation)

    for node in function_body_walk(record, fn):
        if isinstance(node, ast.Assign):
            targets: Set[str] = set()
            for target in node.targets:
                targets |= _target_names(target)
            add(targets, node.value, node)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            add(_target_names(node.target), node.value, node)
        elif isinstance(node, ast.AugAssign):
            targets = _target_names(node.target)
            add(targets, node.value, node, extra=targets)
        elif isinstance(node, ast.NamedExpr):
            add(_target_names(node.target), node.value, node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            add(_target_names(node.target), node.iter, node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    add(
                        _target_names(item.optional_vars),
                        item.context_expr,
                        node,
                    )
        elif isinstance(node, ast.Return) and node.value is not None:
            add({RETURN}, node.value, node)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and isinstance(func.value, ast.Name)
            ):
                synthetic = (
                    ast.Tuple(elts=list(call.args), ctx=ast.Load())
                    if call.args
                    else None
                )
                if synthetic is not None:
                    ast.copy_location(synthetic, call)
                    ast.fix_missing_locations(synthetic)
                    add({func.value.id}, synthetic, node)
        if isinstance(node, ast.Call):
            cache = _cache_call(project, record, own_class, node)
            if cache is not None:
                flow.cache_calls.append(cache)
            else:
                bound = _bind_call(project, record, own_class, node)
                if bound is not None:
                    flow.calls.append(bound)
    return flow


def effective_derivations(flow, influential):
    """Derivations with call results expanded through callee summaries.

    ``influential(callee_fq, kind)`` returns the callee's influencing
    parameter set, or ``None`` when unknown — unknown callees are
    treated conservatively (every argument may matter).
    """
    out: List[Tuple[FrozenSet[str], Set[str], Derivation]] = []
    for derivation in flow.derivations:
        sources = set(derivation.sources)
        for call in derivation.calls:
            known = influential(call.callee, call.kind)
            if known is None:
                sources |= set(call.all_names)
            else:
                for param, names in call.bindings:
                    if param is None or param in known:
                        sources |= names
        out.append((derivation.targets, sources, derivation))
    return out


def backward_closure(derivations, seeds: Set[str]) -> Set[str]:
    """Names that may flow into any of ``seeds`` (fixpoint)."""
    closure = set(seeds)
    changed = True
    while changed:
        changed = False
        for targets, sources, _ in derivations:
            if targets & closure and not sources <= closure:
                closure |= sources
                changed = True
    return closure
