"""The flow manifest: a committed, CI-gated cache-soundness ledger.

``FLOW_MANIFEST.json`` records the analyzer's complete account of the
cache surface: every cache boundary with its influencing parameters
(and their kinds), the parameters its key provably covers, and any
parameters sanctioned on their signature line with ``# repro-lint:
disable=RPL401 reason``; every digest-bearing spec class with its field
coverage; and the line-free sanction ledger for the whole RPL4xx
family.

``repro-flow --check-manifest`` re-derives the payload from source and
fails CI with a unified diff on drift: a new result-influencing knob —
or a change to what the key covers — must land in the same commit as
the manifest update acknowledging it.  Entries are keyed line-free so
pure code motion doesn't churn the file, and the whole payload renders
deterministically (sorted keys/lists) via :mod:`repro.lint.manifest`.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..lint.manifest import diff_manifest, render_manifest
from .rules import FLOW_RULE_IDS, FlowReport

__all__ = [
    "DEFAULT_MANIFEST",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "diff_manifest",
    "render_manifest",
]

#: Default committed location, relative to the repo root.
DEFAULT_MANIFEST = "FLOW_MANIFEST.json"

#: Bump when the manifest envelope shape changes.
MANIFEST_SCHEMA_VERSION = 1


def _function_of(report: FlowReport, path: str, line: int) -> str:
    for record in report.context.project.modules.values():
        if record.info.path == path:
            return record.function_at_line(line).fq
    return "<unknown>"


def _sanctioned_params(report: FlowReport, fq: str) -> List[str]:
    """Boundary params whose RPL401 findings are line-sanctioned."""
    boundary = report.context.boundaries[fq]
    lines = {
        line: param for param, line in boundary.flow.param_lines.items()
    }
    params = set()
    for finding in report.suppressed:
        if finding.rule_id != "RPL401":
            continue
        if finding.path != boundary.record.info.path:
            continue
        param = lines.get(finding.line)
        if param is not None and param in boundary.influencing:
            params.add(param)
    return sorted(params)


def build_manifest(report: FlowReport) -> Dict[str, Any]:
    """The manifest payload, pure data, deterministically ordered."""
    boundaries: Dict[str, Any] = {}
    for fq in sorted(report.context.boundaries):
        boundary = report.context.boundaries[fq]
        boundaries[fq] = {
            "influencing": {
                param: sorted(kinds)
                for param, kinds in sorted(boundary.influencing.items())
            },
            "key_params": sorted(boundary.key_params),
            "sanctioned_params": _sanctioned_params(report, fq),
        }
    digests: Dict[str, Any] = {}
    for digest_cls in report.context.digest_classes:
        digests[digest_cls.cls.fq] = {
            "complete_by_construction": digest_cls.dynamic,
            "fields": sorted(digest_cls.fields),
        }
    sanctioned: List[Dict[str, str]] = []
    seen = set()
    for finding in report.suppressed:
        if finding.rule_id not in FLOW_RULE_IDS:
            continue
        entry = {
            "rule": finding.rule_id,
            "function": _function_of(report, finding.path, finding.line),
            "detail": finding.message,
        }
        key = (entry["rule"], entry["function"], entry["detail"])
        if key in seen:
            continue
        seen.add(key)
        sanctioned.append(entry)
    sanctioned.sort(key=lambda e: (e["rule"], e["function"], e["detail"]))
    return {
        "version": MANIFEST_SCHEMA_VERSION,
        "cache_boundaries": boundaries,
        "digest_classes": digests,
        "sanctioned": sanctioned,
    }
