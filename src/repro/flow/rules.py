"""The RPL4xx rule family: cache soundness & config flow.

The fourth static-analysis tier.  Where RPL1xx certifies per-file
determinism, RPL2xx whole-program purity, and RPL3xx the numeric
kernels, these rules certify that the content-keyed result cache is
*sound*: nothing outside a cached artifact's key can influence the
artifact.

- **RPL401 key-dropped-param** — a cache-boundary parameter that the
  inter-procedural influence fixpoint proves can reach a result (a
  worker's return value, an RNG stream label, or engine construction)
  but that never enters the key material closure.  This is the literal
  PR 6/8 bug shape: ``engine`` forwarded to the experiment but absent
  from ``cache_key()`` config would have served stale grid results for
  graph-engine runs.
- **RPL402 digest-dropped-field** — a declared field of a
  digest-bearing spec class that never enters the digest path, so two
  specs differing only in that knob share one cache entry.
- **RPL403 unfingerprinted-module** — a module in *any* worker's call
  closure absent from ``FINGERPRINT_MODULES``: the static
  generalization of RPL204's entry-worker prefix check to trial
  workers, reported per missing module with a call trace.
- **RPL404 signature-gate-drift** — an
  ``inspect.signature(fn).parameters`` membership gate that silently
  defaults instead of raising when a registered artifact lacks the
  gated parameter: the override is dropped for exactly those
  artifacts, and nothing tells the operator.
- **RPL405 noncanonical-key-material** — the inter-procedural RPL106:
  a repr-unstable value (set / lambda / generator / ``object()``)
  flowing into key or digest material through an assignment or a
  helper's return value, where the per-file rule cannot see it.

Findings reuse the lint engine's :class:`~repro.lint.core.Finding`
shape and suppression directives: a reviewed exception is sanctioned on
its line with ``# repro-lint: disable=RPL4xx <reason>`` and then
appears in the committed ``FLOW_MANIFEST.json`` ledger instead of
failing the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..audit.callgraph import CallGraph, build_call_graph, function_body_walk
from ..audit.project import MODULE_BODY, FunctionNode, ModuleRecord, Project
from ..audit.rules import StaleFingerprintRule
from ..audit.workers import Worker, find_workers
from ..lint.core import Finding
from .boundaries import Boundary, find_boundaries
from .dataflow import RETURN, FunctionFlow
from .digests import DigestClass, find_digest_classes
from .influence import InfluenceSummary, build_flows, build_influence

__all__ = [
    "FLOW_RULES",
    "FLOW_RULE_IDS",
    "FlowContext",
    "FlowReport",
    "FlowRule",
    "build_flow_context",
    "flow_rule_by_identifier",
    "run_flow",
]


@dataclass
class FlowContext:
    """Everything an RPL4xx rule may inspect."""

    project: Project
    graph: CallGraph
    flows: Dict[str, FunctionFlow]
    summaries: Dict[str, InfluenceSummary]
    boundaries: Dict[str, Boundary]
    digest_classes: List[DigestClass]
    workers: List[Worker]
    #: ``(record, line, declared names)`` of FINGERPRINT_MODULES, if any.
    fingerprint: Optional[Tuple[ModuleRecord, int, Set[str]]]

    def record_of(self, fn: FunctionNode) -> ModuleRecord:
        return self.project.modules[fn.module]


class FlowRule:
    """Base class mirroring the audit/vec rule protocol."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, context: FlowContext) -> List[Finding]:
        raise NotImplementedError

    def finding(
        self, record: ModuleRecord, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=record.info.path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            rule_name=self.name,
            message=message,
        )


def _kinds_label(kinds: Set[str]) -> str:
    labels = {
        "return": "the returned result",
        "rng": "an RNG stream/seed derivation",
        "engine": "engine construction",
    }
    return " and ".join(labels[k] for k in sorted(kinds))


class KeyDroppedParamRule(FlowRule):
    rule_id = "RPL401"
    name = "key-dropped-param"
    summary = "result-influencing parameter missing from cache key material"
    rationale = (
        "A cached artifact must be insensitive to everything outside "
        "its key. A boundary parameter that can reach the result (its "
        "return flow, an RNG stream, or engine construction) but never "
        "reaches cache_key() config means two different runs share one "
        "entry — the stale-result bug class PRs 6/8/9 each patched by "
        "hand. Fold the parameter into the key, or sanction it on its "
        "signature line with the reason it cannot change the result."
    )

    def check(self, context: FlowContext) -> List[Finding]:
        findings: List[Finding] = []
        for fq in sorted(context.boundaries):
            boundary = context.boundaries[fq]
            for param in boundary.unkeyed():
                kinds = boundary.influencing[param]
                line = boundary.flow.param_lines.get(
                    param, boundary.fn.lineno
                )
                findings.append(
                    self.finding(
                        boundary.record,
                        line,
                        0,
                        f"parameter '{param}' of cache boundary '{fq}' "
                        f"can influence {_kinds_label(kinds)} but never "
                        "reaches the cache key material — entries cached "
                        "under one value are served for every other; add "
                        f"'{param}' to the key config or sanction it "
                        "with a reason",
                    )
                )
        return findings


class DigestDroppedFieldRule(FlowRule):
    rule_id = "RPL402"
    name = "digest-dropped-field"
    summary = "spec field missing from the canonical-JSON digest path"
    rationale = (
        "Sweep cache keys are the spec digest; a declared field that "
        "never enters digest()'s serialization closure means two specs "
        "differing only in that knob collide on one cache entry. "
        "Enumerate fields dynamically (dataclasses.fields) so new "
        "knobs join the digest automatically."
    )

    def check(self, context: FlowContext) -> List[Finding]:
        findings: List[Finding] = []
        for digest_cls in context.digest_classes:
            closure = " -> ".join(
                fn.qualname for fn in digest_cls.closure
            )
            for missing in digest_cls.missing():
                findings.append(
                    self.finding(
                        digest_cls.record,
                        digest_cls.fields[missing],
                        0,
                        f"field '{missing}' of '{digest_cls.cls.fq}' "
                        f"never enters the digest path ({closure}): two "
                        f"specs differing only in '{missing}' share a "
                        "digest and collide on one cache entry",
                    )
                )
        return findings


def _module_closure(
    graph: CallGraph, root: str
) -> Tuple[Set[str], Dict[str, str]]:
    """Modules reachable from ``root`` plus a BFS parent map for traces."""
    modules: Set[str] = set()
    parents: Dict[str, str] = {}
    queue = [root]
    seen = {root}
    while queue:
        current = queue.pop(0)
        node = graph.nodes.get(current)
        if node is not None:
            modules.add(node.module)
        for site in sorted(
            graph.callees(current), key=lambda s: (s.callee, s.line)
        ):
            if site.callee in seen:
                continue
            seen.add(site.callee)
            parents[site.callee] = current
            queue.append(site.callee)
    return modules, parents


def _trace_to_module(
    graph: CallGraph, parents: Dict[str, str], root: str, module: str
) -> Tuple[str, ...]:
    target: Optional[str] = None
    for fq in sorted(parents) + [root]:
        node = graph.nodes.get(fq)
        if node is not None and node.module == module:
            target = fq
            break
    if target is None:
        return (root,)
    chain = [target]
    while chain[-1] != root and chain[-1] in parents:
        chain.append(parents[chain[-1]])
    return tuple(reversed(chain))


def _short_trace(trace: Tuple[str, ...], limit: int = 4) -> str:
    chain = trace
    if len(chain) > limit:
        chain = chain[:2] + ("...",) + chain[-1:]
    return " -> ".join(chain)


class UnfingerprintedModuleRule(FlowRule):
    rule_id = "RPL403"
    name = "unfingerprinted-module"
    summary = "module in a worker's call closure absent from FINGERPRINT_MODULES"
    rationale = (
        "Cache keys embed a fingerprint hashed over FINGERPRINT_MODULES; "
        "a module any worker (entry or trial) can execute but that the "
        "declaration misses can change without changing any key, so old "
        "entries keep serving results the current code would no longer "
        "produce. RPL204 checks the dynamic entry closure; this is the "
        "static per-module generalization over every dispatch surface."
    )

    def check(self, context: FlowContext) -> List[Finding]:
        if context.fingerprint is None or not context.workers:
            return []  # no declaration: RPL204 owns that diagnosis
        record, lineno, declared = context.fingerprint

        def covered(module: str) -> bool:
            for name in declared:
                if (
                    module == name
                    or module.startswith(name + ".")
                    or name.startswith(module + ".")
                ):
                    return True
            return False

        #: missing module -> (worker fq, trace) exemplar, first worker wins.
        exemplars: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        for worker in sorted(context.workers, key=lambda w: w.fq):
            modules, parents = _module_closure(context.graph, worker.fq)
            for module in sorted(modules):
                if covered(module) or module in exemplars:
                    continue
                trace = _trace_to_module(
                    context.graph, parents, worker.fq, module
                )
                exemplars[module] = (worker.fq, trace)
        findings: List[Finding] = []
        for module in sorted(exemplars):
            worker_fq, trace = exemplars[module]
            findings.append(
                self.finding(
                    record,
                    lineno,
                    0,
                    f"module '{module}' is reachable from worker "
                    f"'{worker_fq}' (via {_short_trace(trace)}) but "
                    "absent from FINGERPRINT_MODULES — edits to it leave "
                    "stale cache entries being served",
                )
            )
        return findings


def _signature_gate(node: ast.If, record: ModuleRecord):
    """``(param, op)`` for an ``"x" [not] in inspect.signature(...)`` gate."""
    test = node.test
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.In, ast.NotIn))
        and isinstance(test.left, ast.Constant)
        and isinstance(test.left.value, str)
    ):
        return None
    comparator = test.comparators[0]
    if not (
        isinstance(comparator, ast.Attribute)
        and comparator.attr == "parameters"
        and isinstance(comparator.value, ast.Call)
    ):
        return None
    canonical = record.info.resolve(comparator.value.func)
    if canonical != "inspect.signature":
        return None
    return test.left.value, test.ops[0]


def _contains_raise(statements: Sequence[ast.stmt]) -> bool:
    return any(
        isinstance(node, ast.Raise)
        for stmt in statements
        for node in ast.walk(stmt)
    )


class SignatureGateDriftRule(FlowRule):
    rule_id = "RPL404"
    name = "signature-gate-drift"
    summary = "inspect.signature parameter gate silently defaults"
    rationale = (
        "The `if \"engine\" not in inspect.signature(fn).parameters` "
        "pattern is sound only when the missing-parameter branch "
        "raises: a gate that silently skips the forward drops the "
        "override for exactly the registered artifacts that lack the "
        "parameter, and the cache then serves their default-config "
        "results under the override's invocation."
    )

    def check(self, context: FlowContext) -> List[Finding]:
        entries = [w for w in context.workers if w.role == "entry"]
        findings: List[Finding] = []
        for name in sorted(context.project.modules):
            record = context.project.modules[name]
            for fn in record.functions.values():
                if fn.qualname == MODULE_BODY:
                    continue
                for node in function_body_walk(record, fn):
                    if not isinstance(node, ast.If):
                        continue
                    gate = _signature_gate(node, record)
                    if gate is None:
                        continue
                    param, op = gate
                    if isinstance(op, ast.NotIn):
                        compliant = _contains_raise(node.body)
                    else:
                        compliant = _contains_raise(node.orelse)
                    if compliant:
                        continue
                    lacking = sorted(
                        w.artifact
                        for w in entries
                        if w.artifact is not None
                        and param not in w.node.params
                    )
                    if entries and not lacking:
                        continue  # every registered artifact takes it
                    detail = (
                        f" (registered artifact(s) without it: "
                        f"{', '.join(lacking)})"
                        if lacking
                        else ""
                    )
                    findings.append(
                        self.finding(
                            record,
                            node.lineno,
                            node.col_offset,
                            f"signature gate on '{param}' in '{fn.fq}' "
                            "silently defaults when the dispatched "
                            f"callable lacks the parameter{detail}; "
                            "raise in the missing branch so a dropped "
                            "override cannot serve mislabeled cached "
                            "results",
                        )
                    )
        return findings


class NoncanonicalKeyMaterialRule(FlowRule):
    rule_id = "RPL405"
    name = "noncanonical-key-material"
    summary = "repr-unstable value flows into key or digest material"
    rationale = (
        "Canonical-JSON key encoding falls back to repr() for values "
        "JSON cannot encode; sets, lambdas, generators, and bare "
        "objects have run-dependent reprs, so the same logical config "
        "hashes differently every run and the cache never hits. RPL106 "
        "sees the hazard only when it sits literally in the call's "
        "arguments; this rule follows it through assignments and "
        "helper returns."
    )

    def _boundary_findings(self, context: FlowContext) -> List[Finding]:
        findings: List[Finding] = []
        for fq in sorted(context.boundaries):
            boundary = context.boundaries[fq]
            for targets, _sources, derivation in boundary.derivations:
                if not targets & boundary.key_closure:
                    continue
                for hazard in derivation.hazards:
                    findings.append(
                        self.finding(
                            boundary.record,
                            derivation.line,
                            derivation.col,
                            f"{hazard} flows into cache key material of "
                            f"'{fq}' through "
                            f"'{'/'.join(sorted(targets))}'; its repr is "
                            "unstable across runs, so the key never "
                            "matches — encode as sorted/plain data",
                        )
                    )
                for call in derivation.calls:
                    helper = context.summaries.get(call.callee)
                    if helper is None or helper.hazard_return is None:
                        continue
                    findings.append(
                        self.finding(
                            boundary.record,
                            derivation.line,
                            derivation.col,
                            f"helper '{call.callee}' returns "
                            f"{helper.hazard_return}, which flows into "
                            f"cache key material of '{fq}' through "
                            f"'{'/'.join(sorted(targets))}' — encode as "
                            "sorted/plain data before it reaches the key",
                        )
                    )
            # Hazard-returning helpers called literally in key arguments.
            for cache_call in boundary.flow.cache_calls:
                for sub in ast.walk(cache_call.node):
                    if not isinstance(sub, ast.Call) or sub is cache_call.node:
                        continue
                    canonical = boundary.record.info.resolve(sub.func)
                    if canonical is None:
                        continue
                    target = context.project.resolve_local(
                        boundary.record, canonical
                    )
                    if target is None or target[0] != "function":
                        continue
                    helper = context.summaries.get(target[1].fq)
                    if helper is None or helper.hazard_return is None:
                        continue
                    findings.append(
                        self.finding(
                            boundary.record,
                            sub.lineno,
                            sub.col_offset,
                            f"helper '{target[1].fq}' returns "
                            f"{helper.hazard_return} directly into key "
                            f"material of {cache_call.desc} in '{fq}' — "
                            "encode as sorted/plain data",
                        )
                    )
        return findings

    def _digest_findings(self, context: FlowContext) -> List[Finding]:
        findings: List[Finding] = []
        for digest_cls in context.digest_classes:
            for fn in digest_cls.closure:
                flow = context.flows.get(fn.fq)
                if flow is None:
                    continue
                for derivation in flow.derivations:
                    feeds_return = RETURN in derivation.targets or any(
                        RETURN in other.targets
                        and derivation.targets & other.sources
                        for other in flow.derivations
                    )
                    if not feeds_return:
                        continue
                    for hazard in derivation.hazards:
                        findings.append(
                            self.finding(
                                digest_cls.record,
                                derivation.line,
                                derivation.col,
                                f"{hazard} flows into digest material of "
                                f"'{digest_cls.cls.fq}' via '{fn.fq}'; "
                                "the digest differs every run — encode "
                                "as sorted/plain data",
                            )
                        )
        return findings

    def check(self, context: FlowContext) -> List[Finding]:
        return self._boundary_findings(context) + self._digest_findings(
            context
        )


FLOW_RULES: List[FlowRule] = sorted(
    [
        KeyDroppedParamRule(),
        DigestDroppedFieldRule(),
        UnfingerprintedModuleRule(),
        SignatureGateDriftRule(),
        NoncanonicalKeyMaterialRule(),
    ],
    key=lambda rule: rule.rule_id,
)

#: The manifest's sanction ledger covers the whole family.
FLOW_RULE_IDS = frozenset(rule.rule_id for rule in FLOW_RULES)


def flow_rule_by_identifier(identifier: str) -> FlowRule:
    """Look up a flow rule by ID (``RPL401``) or name (``key-dropped-param``)."""
    needle = identifier.strip().lower()
    for rule in FLOW_RULES:
        if needle in (rule.rule_id.lower(), rule.name.lower()):
            return rule
    known = ", ".join(f"{r.rule_id}/{r.name}" for r in FLOW_RULES)
    raise KeyError(f"unknown flow rule {identifier!r}; known rules: {known}")


@dataclass
class FlowReport:
    """Outcome of one flow-analyzer run."""

    context: FlowContext
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def _select_flow_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[FlowRule]:
    chosen = list(FLOW_RULES)
    if select is not None:
        wanted = {flow_rule_by_identifier(name).rule_id for name in select}
        chosen = [rule for rule in chosen if rule.rule_id in wanted]
    if ignore is not None:
        dropped = {flow_rule_by_identifier(name).rule_id for name in ignore}
        chosen = [rule for rule in chosen if rule.rule_id not in dropped]
    return chosen


def build_flow_context(project: Project) -> FlowContext:
    """Call graph, flows, influence fixpoint, boundaries, digest classes."""
    graph = build_call_graph(project)
    flows = build_flows(project)
    summaries = build_influence(project, flows)
    return FlowContext(
        project=project,
        graph=graph,
        flows=flows,
        summaries=summaries,
        boundaries=find_boundaries(flows, summaries),
        digest_classes=find_digest_classes(project),
        workers=find_workers(project),
        fingerprint=StaleFingerprintRule._fingerprint_declaration(project),
    )


def run_flow(
    paths: Sequence[Union[str, "Path"]],
    suppressions: str = "all",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> FlowReport:
    """Load, analyze, and apply every (selected) RPL4xx rule.

    Suppression semantics follow the audit/vec tools: ``"all"`` honours
    ``disable-file`` headers, ``"line"`` looks inside them (fixture
    trees); line suppressions on a finding's line move it to the
    ``suppressed`` ledger in both modes.
    """
    project = Project.load(paths, suppressions=suppressions)
    context = build_flow_context(project)
    raw: List[Finding] = []
    for rule in _select_flow_rules(select, ignore):
        raw.extend(rule.check(context))
    raw.extend(project.parse_failures)
    raw.sort()
    by_path = {
        record.info.path: record for record in project.modules.values()
    }
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        record = by_path.get(finding.path)
        if record is not None and record.suppressions.covers(finding):
            suppressed.append(finding)
        else:
            findings.append(finding)
    return FlowReport(context=context, findings=findings, suppressed=suppressed)
