"""Cache-boundary discovery: which functions key cached artifacts.

A *cache boundary* is any function that consumes the content-key
surface — a direct ``cache_key(...)`` call or a
``.get/.put/.key/.entry_path/.discard`` method on a cache-shaped
receiver.  For each boundary this module computes the account RPL401
and RPL405 audit:

- ``key_params`` — parameters in the backward closure of the key
  material arguments (the inputs the key provably covers);
- ``influencing`` — parameters the inter-procedural fixpoint says can
  reach a result (return value, RNG stream, or engine construction),
  with their kinds;
- ``key_closure`` — every local name feeding key material, which is
  where RPL405 looks for repr-unstable values.

Cache *handles* (the receiver itself, or any parameter named like one)
are infrastructure, not inputs, and are exempted from the influence
set — the hit-path exclusion in :mod:`repro.flow.dataflow` already
keeps values read from the cache out of the flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..audit.project import FunctionNode, ModuleRecord
from .dataflow import (
    FunctionFlow,
    backward_closure,
    effective_derivations,
)
from .influence import InfluenceSummary

__all__ = ["Boundary", "find_boundaries"]


@dataclass
class Boundary:
    """One cache-keying function and its key-coverage account."""

    fn: FunctionNode
    record: ModuleRecord
    flow: FunctionFlow
    #: parameter -> influence kinds (only params with at least one kind).
    influencing: Dict[str, Set[str]]
    key_params: Set[str]
    key_closure: Set[str]
    handles: Set[str]
    derivations: List[Tuple[frozenset, Set[str], object]]

    def unkeyed(self) -> List[str]:
        """Influencing parameters the key does not cover, sorted."""
        return sorted(
            param
            for param in self.influencing
            if param not in self.key_params and param not in self.handles
        )


def _handles(flow: FunctionFlow) -> Set[str]:
    names = {
        call.receiver for call in flow.cache_calls if call.receiver is not None
    }
    names |= {
        param for param in flow.fn.params if "cache" in param.lower()
    }
    return names


def find_boundaries(
    flows: Dict[str, FunctionFlow],
    summaries: Dict[str, InfluenceSummary],
) -> Dict[str, Boundary]:
    """Every cache-keying function, keyed by fully qualified name."""

    def influential(callee: str, kind: str):
        if kind != "function":
            return None
        summary = summaries.get(callee)
        return summary.influencing() if summary is not None else None

    boundaries: Dict[str, Boundary] = {}
    for fq in sorted(flows):
        flow = flows[fq]
        if not flow.cache_calls:
            continue
        derivations = effective_derivations(flow, influential)
        key_seeds: Set[str] = set()
        for cache_call in flow.cache_calls:
            key_seeds |= set(cache_call.key_names)
        handles = _handles(flow)
        key_closure = backward_closure(derivations, key_seeds)
        params = [p for p in flow.fn.params if p not in ("self", "cls")]
        summary = summaries.get(fq, InfluenceSummary())
        influencing = {
            param: set(kinds)
            for param, kinds in summary.kinds.items()
            if kinds and param in params
        }
        boundaries[fq] = Boundary(
            fn=flow.fn,
            record=flow.record,
            flow=flow,
            influencing=influencing,
            key_params={p for p in params if p in key_closure},
            key_closure=key_closure,
            handles=handles,
            derivations=derivations,
        )
    return boundaries
