"""repro-flow: cache-soundness & config-flow static analysis.

The fourth static-analysis tier.  :mod:`repro.lint` certifies each
file's determinism in isolation (RPL1xx); :mod:`repro.audit` certifies
the whole program's purity composition (RPL2xx); :mod:`repro.vec`
certifies the numeric kernel layer (RPL3xx); this package certifies the
*content-keyed cache* (RPL4xx): every parameter that can influence a
cached result is part of its key, every declared spec field enters the
digest, every module a worker can execute is fingerprinted, signature
gates raise instead of silently defaulting, and nothing repr-unstable
flows into key material through a helper.  The committed
``FLOW_MANIFEST.json`` is the CI-gated ledger of the cache surface and
every sanctioned exception.

Public surface::

    from repro.flow import run_flow
    report = run_flow(["src"])
    report.ok            # no unsanctioned RPL4xx findings
    report.findings      # RPL4xx + RPL900 findings, sorted

Command line: ``repro-flow`` (or ``python -m repro.flow``).
"""

from .boundaries import Boundary, find_boundaries
from .dataflow import (
    RETURN,
    BoundCall,
    CacheCall,
    Derivation,
    FunctionFlow,
    backward_closure,
    collect_flow,
    effective_derivations,
)
from .digests import DigestClass, find_digest_classes
from .influence import (
    INFLUENCE_KINDS,
    InfluenceSummary,
    build_flows,
    build_influence,
)
from .manifest import (
    DEFAULT_MANIFEST,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    diff_manifest,
    render_manifest,
)
from .rules import (
    FLOW_RULES,
    FlowContext,
    FlowReport,
    FlowRule,
    build_flow_context,
    flow_rule_by_identifier,
    run_flow,
)

__all__ = [
    "Boundary",
    "BoundCall",
    "CacheCall",
    "DEFAULT_MANIFEST",
    "Derivation",
    "DigestClass",
    "FLOW_RULES",
    "FlowContext",
    "FlowReport",
    "FlowRule",
    "FunctionFlow",
    "INFLUENCE_KINDS",
    "InfluenceSummary",
    "MANIFEST_SCHEMA_VERSION",
    "RETURN",
    "backward_closure",
    "build_flow_context",
    "build_flows",
    "build_influence",
    "build_manifest",
    "collect_flow",
    "diff_manifest",
    "effective_derivations",
    "find_boundaries",
    "find_digest_classes",
    "flow_rule_by_identifier",
    "render_manifest",
    "run_flow",
]
