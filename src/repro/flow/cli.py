"""``repro-flow`` console entry point.

Usage::

    repro-flow                         # analyze src, report findings
    repro-flow --check-manifest        # CI gate: findings OR manifest drift fail
    repro-flow --write-manifest        # regenerate FLOW_MANIFEST.json
    repro-flow --format json           # machine-readable report
    repro-flow --select RPL401         # one rule family member
    repro-flow --list-rules            # RPL4xx catalogue with rationale

Exit codes match ``repro-lint``/``repro-audit``/``repro-vec``: 0 clean,
1 findings (or manifest drift under ``--check-manifest``), 2 usage
error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

from ..lint.core import FileReport, RunReport
from ..lint.reporters import render_json, render_text
from ..lint.rules import family_of
from .manifest import DEFAULT_MANIFEST, build_manifest, diff_manifest, render_manifest
from .rules import FLOW_RULES, FlowReport, flow_rule_by_identifier, run_flow

__all__ = ["main"]

_DEFAULT_PATHS = ["src"]


def _split_rule_list(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    names = [part.strip() for chunk in values for part in chunk.split(",")]
    return [name for name in names if name]


def _render_rule_list() -> str:
    family = family_of("RPL401")
    lines = [f"repro-flow rules ({family}):"]
    for rule in FLOW_RULES:
        lines.append(f"  {rule.rule_id}  {rule.name:<26} {rule.summary}")
        lines.append(f"          {rule.rationale}")
    lines.append(
        "sanction a reviewed exception on its line with `# repro-lint: "
        "disable=<rule-id> <reason>`; sanctioned entries raise no findings "
        "but stay in FLOW_MANIFEST.json"
    )
    return "\n".join(lines)


def as_run_report(report: FlowReport) -> RunReport:
    """Adapt a flow outcome to the lint reporters' ``RunReport`` shape."""
    by_path: Dict[str, FileReport] = {}

    def slot(path: str) -> FileReport:
        if path not in by_path:
            by_path[path] = FileReport(path=path, findings=[], suppressed=[])
        return by_path[path]

    for record in report.context.project.modules.values():
        slot(record.info.path)
    for finding in report.findings:
        slot(finding.path).findings.append(finding)
    for finding in report.suppressed:
        slot(finding.path).suppressed.append(finding)
    return RunReport(files=[by_path[path] for path in sorted(by_path)])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-flow",
        description=(
            "Cache-soundness & config-flow static analysis over the repro "
            "caching layer (see the README section 'Static analysis')."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"directories to analyze (default: {' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        help="comma-separated flow rule IDs/names to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        help="comma-separated flow rule IDs/names to skip",
    )
    parser.add_argument(
        "--manifest",
        default=DEFAULT_MANIFEST,
        metavar="PATH",
        help=f"manifest location (default: {DEFAULT_MANIFEST})",
    )
    parser.add_argument(
        "--write-manifest",
        action="store_true",
        help="regenerate the manifest from source and write it",
    )
    parser.add_argument(
        "--check-manifest",
        action="store_true",
        help="fail (exit 1) when the committed manifest has drifted",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the flow rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rule_list())
        return 0

    select = _split_rule_list(args.select)
    ignore = _split_rule_list(args.ignore)
    try:
        for name in (select or []) + (ignore or []):
            flow_rule_by_identifier(name)
    except KeyError as exc:
        print(f"repro-flow: error: {exc.args[0]}", file=sys.stderr)
        return 2

    paths = args.paths if args.paths else list(_DEFAULT_PATHS)
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(
            f"repro-flow: error: no such path(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    report = run_flow(paths, select=select, ignore=ignore)
    run_report = as_run_report(report)
    if args.format == "json":
        print(render_json(run_report))
    else:
        print(render_text(run_report, prog="repro-flow"))

    status = 0 if report.ok else 1

    manifest = build_manifest(report)
    if args.write_manifest:
        Path(args.manifest).write_text(
            render_manifest(manifest), encoding="utf-8"
        )
        print(f"repro-flow: wrote {args.manifest}")
    elif args.check_manifest:
        drift = diff_manifest(manifest, args.manifest)
        if drift is not None:
            print(
                f"repro-flow: manifest drift — {args.manifest} no longer "
                "matches the analyzed source; regenerate with "
                "--write-manifest and commit the result",
                file=sys.stderr,
            )
            sys.stderr.write(drift)
            status = 1
        else:
            print(f"repro-flow: manifest {args.manifest} is current")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
