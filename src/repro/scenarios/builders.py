"""Canned experiment scenarios: topology + network + pools, pre-wired.

Most studies on this library need the same setup: the paper-calibrated
topology, a P2P network whose node ids align with it, and the Table IV
mining pools attached to hosts inside their real stratum ASes.  These
builders package that wiring so examples, tests, and downstream users
start from one call::

    from repro.scenarios import paper_network

    scenario = paper_network(scale=0.2, num_nodes=400, seed=7)
    scenario.network.run_for(3600)

The returned :class:`Scenario` keeps the pieces together and offers the
joins experiments need (node ids per AS inside the network, the pool
for a given stratum AS, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..datagen.pools import MINING_POOLS, MiningPoolRecord, OTHERS_HASH_SHARE
from ..errors import ConfigurationError
from ..netsim.latency import DiffusionLatency, LatencyModel
from ..netsim.miner import MiningPool
from ..netsim.network import Network, NetworkConfig
from ..topology.builder import build_paper_topology
from ..topology.topology import Topology

__all__ = ["MISSING_STRATUM_POLICIES", "Scenario", "paper_network"]

#: Accepted ``paper_network(missing_stratum=...)`` policies for pools
#: whose stratum AS is absent from a scaled topology slice:
#: ``"rehome"`` hosts the pool at a deterministic fallback node (hash
#: accounting stays complete), ``"error"`` raises
#: :class:`~repro.errors.ConfigurationError`, ``"drop"`` restores the
#: historical silent-drop behaviour.
MISSING_STRATUM_POLICIES = ("rehome", "error", "drop")


@dataclass
class Scenario:
    """A wired experiment world.

    Attributes:
        topology: Paper-calibrated spatial ground truth.
        network: Simulation whose node ids 0..N-1 are the topology's
            first N nodes.
        pools: Mining pools attached per Table IV (plus the "others"
            aggregate pool), keyed by name.
    """

    topology: Topology
    network: Network
    pools: Dict[str, MiningPool] = field(default_factory=dict)
    #: Pools hosted away from their stratum AS because the scaled
    #: topology slice does not represent it: name -> requested ASN.
    rehomed: Dict[str, int] = field(default_factory=dict)

    def nodes_in_as(self, asn: int) -> List[int]:
        """Network node ids hosted in ``asn``."""
        return [
            node_id
            for node_id in self.topology.nodes_in_as(asn)
            if node_id in self.network.nodes
        ]

    def pool_for_stratum(self, asn: int) -> List[MiningPool]:
        """Pools whose stratum endpoint lives in ``asn``."""
        return [
            pool for pool in self.pools.values() if pool.stratum.asn == asn
        ]

    def host_outside(self, asns: Sequence[int]) -> int:
        """A network node id hosted outside all of ``asns``.

        Useful for placing honest infrastructure clear of a planned
        hijack.  Raises if the network is entirely inside the set.
        """
        excluded = set(asns)
        for node_id in self.network.nodes:
            if self.topology.asn_of(node_id) not in excluded:
                return node_id
        raise ConfigurationError(
            "network has no node outside the given ASes", asns=list(asns)
        )


def paper_network(
    scale: float = 0.2,
    num_nodes: Optional[int] = None,
    seed: int = 0,
    failure_rate: float = 0.05,
    latency: Optional[LatencyModel] = None,
    with_pools: bool = True,
    pool_records: Tuple[MiningPoolRecord, ...] = MINING_POOLS,
    missing_stratum: str = "rehome",
) -> Scenario:
    """Build the standard paper scenario.

    Parameters:
        scale: Topology shrink factor (1.0 = the full 13,635 nodes).
        num_nodes: Network size; defaults to the scaled topology's full
            population.  Node ids 0..num_nodes-1 align with the
            topology's hosting.
        seed: Root seed for topology and simulation.
        failure_rate: Per-message drop probability.
        latency: Link-delay model (default: diffusion, rate 0.8).
        with_pools: Attach the Table IV pools plus an "others"
            aggregate carrying the remaining 34.3% of hash rate.
        pool_records: Pool dataset to attach (defaults to Table IV).
        missing_stratum: What to do with a pool whose stratum AS has no
            free host inside the scaled network slice (see
            :data:`MISSING_STRATUM_POLICIES`).  The default
            ``"rehome"`` hosts it at the lowest-id free node and
            records the move in :attr:`Scenario.rehomed`, so the total
            attached hash rate is complete at every scale; ``"error"``
            raises instead, and ``"drop"`` is the historical silent
            drop (which under-counts hash rate and is why it is no
            longer the default).

    Each pool's host node is drawn from the first stratum AS it lists,
    so stratum hijacks in the simulation isolate exactly the pools the
    Table IV analysis predicts.
    """
    if missing_stratum not in MISSING_STRATUM_POLICIES:
        raise ConfigurationError(
            "unknown missing_stratum policy",
            policy=missing_stratum,
            choices=MISSING_STRATUM_POLICIES,
        )
    topology = build_paper_topology(seed=seed, scale=scale)
    total = topology.num_nodes
    if num_nodes is None:
        num_nodes = total
    if num_nodes > total:
        raise ConfigurationError(
            "network larger than topology", num_nodes=num_nodes, topology=total
        )
    network = Network(
        NetworkConfig(num_nodes=num_nodes, seed=seed, failure_rate=failure_rate),
        latency=latency or DiffusionLatency(rate=0.8),
    )
    scenario = Scenario(topology=topology, network=network)
    if not with_pools:
        return scenario

    used_hosts: set = set()
    for record in pool_records:
        host = _host_in_as(scenario, record.stratum_asns[0], used_hosts)
        if host is None:
            # The scaled slice does not represent this pool's stratum
            # AS: silently dropping it would leave the attached hash
            # rate incomplete (the seed bug), so the outcome is an
            # explicit policy decision.
            if missing_stratum == "drop":
                continue
            if missing_stratum == "error":
                raise ConfigurationError(
                    "pool's stratum AS has no free host in the scaled "
                    "network slice",
                    pool=record.name,
                    stratum_asn=record.stratum_asns[0],
                    scale=scale,
                    num_nodes=num_nodes,
                )
            host = _fallback_host(scenario, used_hosts)
            if host is None:
                raise ConfigurationError(
                    "network too small to host every pool",
                    pool=record.name,
                    num_nodes=num_nodes,
                )
            scenario.rehomed[record.name] = record.stratum_asns[0]
        used_hosts.add(host)
        pool = network.add_pool(
            record.name,
            record.hash_share,
            node_id=host,
            stratum_asn=record.stratum_asns[0],
        )
        scenario.pools[record.name] = pool
    # The Table IV "12 others" aggregate: hosted outside the top
    # stratum ASes so isolation experiments leave it running.
    stratum_asns = [r.stratum_asns[0] for r in pool_records]
    try:
        other_host = scenario.host_outside(stratum_asns)
    except ConfigurationError:
        other_host = next(iter(network.nodes))
    others = network.add_pool(
        "others", OTHERS_HASH_SHARE, node_id=other_host, stratum_asn=0
    )
    scenario.pools["others"] = others
    return scenario


def _host_in_as(scenario: Scenario, asn: int, used: set) -> Optional[int]:
    for node_id in scenario.nodes_in_as(asn):
        if node_id not in used:
            return node_id
    return None


def _fallback_host(scenario: Scenario, used: set) -> Optional[int]:
    """Deterministic rehoming target: the lowest-id unused node."""
    for node_id in sorted(scenario.network.nodes):
        if node_id not in used:
            return node_id
    return None
