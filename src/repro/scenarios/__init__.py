"""Scenario library: canned experiment worlds and declarative specs.

Two layers live here:

- :mod:`repro.scenarios.builders` — imperative builders that wire the
  paper-calibrated topology, P2P network, and Table IV mining pools
  into a ready :class:`Scenario` (``paper_network``);
- :mod:`repro.scenarios.spec` — the declarative, hashable
  :class:`ScenarioSpec` that compiles an attacker hash-rate schedule,
  partition/failure timelines, and an unreachable-peer population down
  to the propagation engines, the unit the :mod:`repro.sweeps` driver
  fans out by the thousands.

The historical import surface (``from repro.scenarios import
paper_network``) is preserved.
"""

from .builders import MISSING_STRATUM_POLICIES, Scenario, paper_network
from .spec import (
    SCENARIO_TOPOLOGIES,
    ScenarioSpec,
    run_scenario,
    scenario_summary_keys,
)

__all__ = [
    "MISSING_STRATUM_POLICIES",
    "SCENARIO_TOPOLOGIES",
    "Scenario",
    "ScenarioSpec",
    "paper_network",
    "run_scenario",
    "scenario_summary_keys",
]
