"""Declarative, hashable scenario specifications.

A :class:`ScenarioSpec` is the sweep driver's unit of work: one frozen,
canonically-normalized description of a full attack scenario — the
topology and engine, the attacker hash-rate schedule, the BGP-hijack /
partition timeline, the churn (failure-rate) regime, and the
unreachable-peer population — that

- compiles to a ready engine via :meth:`ScenarioSpec.build` (grid
  configs through :func:`~repro.netsim.grid.make_simulator`, power-law
  graphs through :meth:`~repro.netsim.graph.GraphSpec.power_law`, with
  a :class:`~repro.netsim.timeline.Timeline` attached);
- serializes to a canonical JSON dict (:meth:`to_dict` /
  :meth:`from_dict`), so specs travel through trial params and spec
  files unchanged;
- hashes to a stable content digest (:meth:`digest`) that the sweep
  driver folds into :class:`~repro.parallel.cache.ResultCache` keys —
  two specs differing in any field can never share a cache entry.

Normalization happens at construction: schedules are sorted and
deduplicated (conflicting same-step entries are rejected through the
timeline build), so two differently-written but equivalent specs have
equal digests.  :func:`run_scenario` is the module-level worker body:
spec + seed in, a flat deterministic summary dict out — no wall-clock,
no environment, nothing host-dependent.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..netsim.graph import GraphConfig, GraphSpec, RNG_PROTOCOLS
from ..netsim.grid import ENGINES, GridConfig, make_simulator
from ..netsim.latency import DELAY_MODELS
from ..netsim.timeline import Timeline

__all__ = [
    "SCENARIO_TOPOLOGIES",
    "ScenarioSpec",
    "run_scenario",
    "scenario_summary_keys",
]

#: Accepted ``ScenarioSpec.topology`` values: ``"grid"`` is the paper's
#: square grid (Figure 7), ``"power_law"`` the degree-calibrated
#: synthetic topology.
SCENARIO_TOPOLOGIES = ("grid", "power_law")

#: Keys of the summary dict :func:`run_scenario` returns, in order.
_SUMMARY_KEYS = (
    "spec_digest",
    "seed",
    "steps",
    "peak_attacker_fraction",
    "final_attacker_fraction",
    "final_main_fraction",
    "final_synced_fraction",
    "final_height",
    "forks_born",
    "forks_dead",
    "timeline_events",
)


def scenario_summary_keys() -> Tuple[str, ...]:
    """Keys every :func:`run_scenario` summary carries (schema pin)."""
    return _SUMMARY_KEYS


def _norm_schedule(entries) -> Tuple[Tuple[int, float], ...]:
    normalized = set()
    for entry in entries:
        step, value = entry
        normalized.add((int(step), float(value)))
    return tuple(sorted(normalized))


def _norm_partitions(entries) -> Tuple[Tuple[int, int, float], ...]:
    normalized = set()
    for entry in entries:
        start, end, fraction = entry
        normalized.add((int(start), int(end), float(fraction)))
    return tuple(sorted(normalized))


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative attack scenario (see the module docstring).

    Topology / engine:
        topology: ``"grid"`` or ``"power_law"``.
        size: Grid edge length (grid topology only; ``num_nodes`` is
            then ``size * size`` and must stay ``None``).
        num_nodes: Node count (power-law topology only).
        base_degree / tail_alpha / max_delay / rng_protocol: Power-law
            construction knobs (see
            :meth:`~repro.netsim.graph.GraphSpec.power_law`).
        engine: ``"auto"``, ``"scalar"``, ``"vec"``, or ``"graph"``
            (power-law topologies accept only ``"auto"``/``"graph"``).
        delay_model: Optional calibrated delay-model name from
            :data:`~repro.netsim.latency.DELAY_MODELS`; requires graph
            semantics (power-law topology, or a grid bridged with
            ``engine="graph"``).

    Simulation regime:
        steps: Communication steps to run.
        steps_per_block / failure_rate / natural_fork_rate /
        attacker_share / attacker_node / attack_start_step: Engine
            config fields (the attacker node indexes row-major on a
            grid).
        sample_every: Steps between peak-fraction samples.

    Timelines (tick-boundary changes; see
    :mod:`repro.netsim.timeline`):
        hash_schedule: ``(step, attacker_share)`` changepoints.
        failure_schedule: ``(step, failure_rate)`` changepoints.
        partitions: ``(start, end, fraction)`` windows cutting the
            lowest-index ``fraction`` of nodes off the graph (graph
            semantics required).

    Populations:
        unreachable_fraction: Fraction of nodes (the highest-index
            ones, disjoint from partition masks) that accept no
            inbound edges — the paper's §III unreachable majority
            (power-law topology only).
    """

    topology: str = "grid"
    size: Optional[int] = None
    num_nodes: Optional[int] = None
    base_degree: int = 8
    tail_alpha: float = 2.0
    max_delay: int = 0
    rng_protocol: int = 1
    engine: str = "auto"
    delay_model: Optional[str] = None
    steps: int = 100
    steps_per_block: int = 50
    failure_rate: float = 0.10
    natural_fork_rate: float = 0.10
    attacker_share: float = 0.30
    attacker_node: int = 0
    attack_start_step: int = 0
    sample_every: int = 10
    hash_schedule: Tuple[Tuple[int, float], ...] = ()
    failure_schedule: Tuple[Tuple[int, float], ...] = ()
    partitions: Tuple[Tuple[int, int, float], ...] = ()
    unreachable_fraction: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "hash_schedule", _norm_schedule(self.hash_schedule)
        )
        object.__setattr__(
            self, "failure_schedule", _norm_schedule(self.failure_schedule)
        )
        object.__setattr__(
            self, "partitions", _norm_partitions(self.partitions)
        )
        if self.topology not in SCENARIO_TOPOLOGIES:
            raise ConfigurationError(
                "unknown topology",
                topology=self.topology,
                choices=SCENARIO_TOPOLOGIES,
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                "unknown engine", engine=self.engine, choices=ENGINES
            )
        if self.rng_protocol not in RNG_PROTOCOLS:
            raise ConfigurationError(
                "unknown rng_protocol", protocol=self.rng_protocol
            )
        if self.topology == "grid":
            if self.size is None or self.size < 2:
                raise ConfigurationError(
                    "grid topology requires size >= 2", size=self.size
                )
            if self.num_nodes is not None:
                raise ConfigurationError(
                    "grid topology derives num_nodes from size",
                    num_nodes=self.num_nodes,
                )
            if self.rng_protocol != 1:
                raise ConfigurationError(
                    "grid topologies require rng_protocol 1",
                    protocol=self.rng_protocol,
                )
        else:
            if self.num_nodes is None or self.num_nodes < 2:
                raise ConfigurationError(
                    "power_law topology requires num_nodes >= 2",
                    num_nodes=self.num_nodes,
                )
            if self.size is not None:
                raise ConfigurationError(
                    "power_law topology takes num_nodes, not size",
                    size=self.size,
                )
            if self.engine not in ("auto", "graph"):
                raise ConfigurationError(
                    "power_law topologies run on the graph engine",
                    engine=self.engine,
                    choices=("auto", "graph"),
                )
        if self.steps < 1:
            raise ConfigurationError("steps must be >= 1", steps=self.steps)
        if self.sample_every < 1:
            raise ConfigurationError(
                "sample_every must be >= 1", sample_every=self.sample_every
            )
        if not 0 <= self.attacker_node < self.total_nodes:
            raise ConfigurationError(
                "attacker_node outside the topology",
                node=self.attacker_node,
                num_nodes=self.total_nodes,
            )
        if not 0.0 <= self.unreachable_fraction < 1.0:
            raise ConfigurationError(
                "unreachable_fraction in [0,1)",
                fraction=self.unreachable_fraction,
            )
        graph_semantics = self.topology == "power_law" or self.engine == "graph"
        if self.delay_model is not None:
            if self.delay_model not in DELAY_MODELS:
                raise ConfigurationError(
                    "unknown delay model",
                    delay_model=self.delay_model,
                    choices=tuple(sorted(DELAY_MODELS)),
                )
            if not graph_semantics:
                raise ConfigurationError(
                    "delay models require the graph engine",
                    topology=self.topology,
                    engine=self.engine,
                )
            if self.max_delay > 0:
                raise ConfigurationError(
                    "max_delay and delay_model are mutually exclusive",
                    max_delay=self.max_delay,
                )
        if self.max_delay and self.topology != "power_law":
            raise ConfigurationError(
                "max_delay is a power_law construction knob",
                topology=self.topology,
            )
        if self.partitions and not graph_semantics:
            raise ConfigurationError(
                "partition timelines require the graph engine",
                topology=self.topology,
                engine=self.engine,
            )
        if self.unreachable_fraction and self.topology != "power_law":
            raise ConfigurationError(
                "unreachable populations require the power_law topology",
                topology=self.topology,
            )
        # Build the timeline once to validate schedules and windows
        # (range checks, same-step conflicts) at construction time.
        self.timeline()

    # ------------------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        """Node count regardless of topology kind."""
        if self.topology == "grid":
            return self.size * self.size
        return self.num_nodes

    def timeline(self) -> Timeline:
        """The spec's schedules compiled to a normalized timeline."""
        return Timeline.from_schedules(
            hash_schedule=self.hash_schedule,
            failure_schedule=self.failure_schedule,
            partitions=self.partitions,
        )

    # ------------------------------------------------------------------
    # Canonical serialization and content digest
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical plain-JSON dict (tuples become lists)."""
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = [list(entry) for entry in value]
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                "unknown ScenarioSpec fields", fields=sorted(unknown)
            )
        kwargs = dict(data)
        for name in ("hash_schedule", "failure_schedule", "partitions"):
            if name in kwargs:
                kwargs[name] = tuple(tuple(entry) for entry in kwargs[name])
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """The canonical serialized form the digest is computed over."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """Stable content digest over every field (hex sha256)."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def build(self, seed: int):
        """Compile to a ready engine, timeline attached, under ``seed``."""
        timeline = self.timeline()
        if self.topology == "grid":
            row, col = divmod(self.attacker_node, self.size)
            config = GridConfig(
                size=self.size,
                failure_rate=self.failure_rate,
                steps_per_block=self.steps_per_block,
                attacker_share=self.attacker_share,
                attacker_cell=(row, col),
                attack_start_step=self.attack_start_step,
                natural_fork_rate=self.natural_fork_rate,
                seed=seed,
            )
            sim = make_simulator(
                config, engine=self.engine, delay_model=self.delay_model
            )
        else:
            spec = GraphSpec.power_law(
                self.num_nodes,
                base_degree=self.base_degree,
                tail_alpha=self.tail_alpha,
                max_delay=self.max_delay,
                seed=seed,
                delay_model=(
                    DELAY_MODELS[self.delay_model]
                    if self.delay_model is not None
                    else None
                ),
                rng_protocol=self.rng_protocol,
            )
            if self.unreachable_fraction:
                k = int(round(self.unreachable_fraction * self.num_nodes))
                if k > 0:
                    mask = np.zeros(self.num_nodes, dtype=bool)
                    mask[self.num_nodes - k :] = True
                    spec = spec.unreachable(mask)
            config = GraphConfig(
                spec=spec,
                failure_rate=self.failure_rate,
                steps_per_block=self.steps_per_block,
                attacker_share=self.attacker_share,
                attacker_node=self.attacker_node,
                attack_start_step=self.attack_start_step,
                natural_fork_rate=self.natural_fork_rate,
                seed=seed,
            )
            # The delay model (if any) is already woven into the spec
            # above, so it must not be passed again here.
            sim = make_simulator(config, engine=self.engine)
        if timeline:
            sim.attach_timeline(timeline)
        return sim


def run_scenario(spec: ScenarioSpec, seed: int = 0) -> Dict[str, object]:
    """Run ``spec`` under ``seed`` and summarize it deterministically.

    The summary (keys pinned by :func:`scenario_summary_keys`) carries
    only simulation state — fork fractions, heights, fork counts —
    never wall-clock or host facts, so identical (spec, seed) pairs
    summarize bit-identically on any machine and under any ``jobs=N``
    fan-out.  The peak attacker fraction is sampled every
    ``spec.sample_every`` steps (and at the final step).
    """
    sim = spec.build(seed)
    peak = 0.0
    done = 0
    while done < spec.steps:
        chunk = min(spec.sample_every, spec.steps - done)
        sim.run(chunk)
        done += chunk
        fraction = sim.attacker_fraction()
        if fraction > peak:
            peak = fraction
    heights = sim.heights
    if heights and isinstance(heights[0], list):
        final_height = max(max(row) for row in heights)
    else:
        final_height = max(heights)
    return {
        "spec_digest": spec.digest(),
        "seed": int(seed),
        "steps": int(spec.steps),
        "peak_attacker_fraction": float(peak),
        "final_attacker_fraction": float(sim.attacker_fraction()),
        "final_main_fraction": float(sim.fork_fractions().get("A", 0.0)),
        "final_synced_fraction": float(sim.synced_fraction()),
        "final_height": int(final_height),
        "forks_born": int(len(sim.fork_births)),
        "forks_dead": int(len(sim.fork_deaths)),
        "timeline_events": int(len(sim.timeline_fired)),
    }
