"""The Table VIII software census and version-distribution generator.

The paper observed 288 distinct Bitcoin client variants, with the top
five Bitcoin Core releases covering ~75% of nodes and a long tail of
286 other clients covering the rest (§V-D).  The top-five rows are
pinned verbatim; the tail is synthesized with a power-law share so the
count of distinct versions matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import DataGenError

__all__ = [
    "VersionRecord",
    "SOFTWARE_VERSIONS",
    "TOTAL_VARIANTS",
    "version_distribution",
]

#: §V-D: distinct software variants observed among full nodes.
TOTAL_VARIANTS = 288


@dataclass(frozen=True)
class VersionRecord:
    """Table VIII row.

    Attributes:
        index: Rank by user share.
        version: Client version string.
        release_date: Upstream release date (as printed).
        lag_days: Days between release and the paper's collection date
            (as printed in the table).
        users_pct: Share of full nodes running this version.
    """

    index: int
    version: str
    release_date: str
    lag_days: int
    users_pct: float


#: Table VIII, verbatim.
SOFTWARE_VERSIONS: Tuple[VersionRecord, ...] = (
    VersionRecord(1, "B. Core v0.16.0", "02-26-2018", 59, 36.28),
    VersionRecord(2, "B. Core v0.15.1", "11-11-2017", 166, 27.52),
    VersionRecord(3, "B. Core v0.15.0.1", "09-19-2017", 219, 5.01),
    VersionRecord(4, "B. Core v0.14.2", "06-17-2017", 313, 4.67),
    VersionRecord(5, "B. Core v0.15.0", "04-22-2017", 369, 2.05),
)


def version_distribution(total_nodes: int) -> Dict[str, int]:
    """Node counts per version for a population of ``total_nodes``.

    The pinned top five take their Table VIII shares; the remaining
    share (~24.5%) is split over ``TOTAL_VARIANTS - 5`` synthetic
    variants with power-law weights, every variant getting at least
    one node.  Returns exactly ``total_nodes`` across exactly
    ``TOTAL_VARIANTS`` versions (when the population is large enough).
    """
    if total_nodes < TOTAL_VARIANTS:
        raise DataGenError(
            "population too small for the variant census",
            total_nodes=total_nodes,
            variants=TOTAL_VARIANTS,
        )
    counts: Dict[str, int] = {}
    assigned = 0
    for record in SOFTWARE_VERSIONS:
        count = round(total_nodes * record.users_pct / 100.0)
        counts[record.version] = count
        assigned += count

    tail_variants = TOTAL_VARIANTS - len(SOFTWARE_VERSIONS)
    tail_total = total_nodes - assigned
    if tail_total < tail_variants:
        raise DataGenError(
            "tail too small; top-five shares leave too few nodes",
            tail_total=tail_total,
            tail_variants=tail_variants,
        )
    weights = [(i + 1) ** -0.8 for i in range(tail_variants)]
    weight_sum = sum(weights)
    tail_counts = [
        max(1, int(tail_total * w / weight_sum)) for w in weights
    ]
    # Largest-remainder fixup to hit the exact total.
    deficit = tail_total - sum(tail_counts)
    index = 0
    while deficit != 0:
        slot = index % tail_variants
        if deficit > 0:
            tail_counts[slot] += 1
            deficit -= 1
        elif tail_counts[slot] > 1:
            tail_counts[slot] -= 1
            deficit += 1
        index += 1
    for i, count in enumerate(tail_counts):
        counts[f"variant-{i + 1:03d}"] = count
    return counts


def top_versions(counts: Dict[str, int], k: int = 5) -> List[Tuple[str, int]]:
    """Top-k versions by node count (Table VIII ordering)."""
    return sorted(counts.items(), key=lambda kv: -kv[1])[:k]
