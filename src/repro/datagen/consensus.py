"""Consensus-lag dynamics generator (Figures 6/8, Tables V/VII).

The paper's temporal analysis rests on a two-month, per-node record of
*block lag*: how many blocks each node trailed the best chain at every
sample tick.  This module regenerates such a record with a stochastic
model whose ingredients mirror the mechanisms the paper identifies
(§V-B):

- blocks arrive as a Poisson process (mean 600 s);
- each node has a *catch-up delay* per block — the time between the
  block's publication and the node's adoption of it — drawn lognormal
  around a per-node scale;
- nodes fall into three behavioural classes observed in Figure 6(a):
  ~50% stay synchronized, 30–40% "waver", ~10% are effectively always
  behind;
- per-block *propagation storms* (global delay multipliers) create the
  wide yellow/purple spikes of Figure 6(b) where up to ~90% of the
  network falls behind;
- per-AS quality multipliers reproduce Table VII's per-AS synced-node
  ordering.

The output is a :class:`~repro.crawler.timeseries.ConsensusTimeSeries`
(samples x nodes lag matrix), which every downstream analysis consumes.
Generation is vectorized with NumPy and chunked over nodes, so the
paper-scale configuration (10k nodes, days of 1-minute samples) runs in
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..crawler.timeseries import ConsensusTimeSeries
from ..errors import DataGenError
from ..rng import RngStreams
from ..types import BITCOIN_BLOCK_INTERVAL

__all__ = ["ConsensusModelParams", "ConsensusDynamicsGenerator"]


@dataclass(frozen=True)
class ConsensusModelParams:
    """Tunable parameters of the lag-dynamics model.

    Defaults are calibrated so the generated series matches the paper's
    headline statistics: ~62.7% of nodes >= 1 block behind five minutes
    after a block (Table V row 1), a long-run synced share around 45-55%
    (Figure 6(a)), a ~10% forever-behind tail, and storm spikes reaching
    ~90% of the network (Figure 6(b/c)).
    """

    block_interval: float = BITCOIN_BLOCK_INTERVAL
    #: Behavioural class mix (Figure 6(a) observations 1-3).
    synced_fraction: float = 0.50
    waverer_fraction: float = 0.40
    stuck_fraction: float = 0.10
    #: Median catch-up delay per class (seconds).  Calibrated so the
    #: worst 5-minute window strands ~62.7% of nodes >= 1 block behind
    #: (Table V row 1) while the sustained tail converges to the ~10%
    #: forever-behind class.
    synced_median_delay: float = 60.0
    waverer_median_delay: float = 330.0
    stuck_median_delay: float = 18_000.0
    #: Log-sigma of per-block delay noise and of per-node heterogeneity.
    delay_sigma: float = 0.45
    node_sigma: float = 0.30
    #: Per-block storm model: every block's delays share a lognormal
    #: multiplier; bigger storms (x ``storm_multiplier``) hit with
    #: probability ``storm_prob`` and produce the Figure 6(b) spikes.
    storm_sigma: float = 0.22
    storm_prob: float = 0.02
    storm_multiplier: float = 1.7
    #: AR(1) day-scale modulation of delays (regime changes in Fig 6(a)).
    regime_rho: float = 0.97
    regime_sigma: float = 0.04
    #: Lag cap stored in the matrix (int16-safe; deep laggards saturate).
    max_lag: int = 60
    #: Blocks are generated from ``-burn_in`` so the sample window opens
    #: in steady state: without it, the first ticks see zero published
    #: blocks and even the forever-behind class counts as "synced".
    burn_in: float = 43_200.0

    def __post_init__(self) -> None:
        mix = self.synced_fraction + self.waverer_fraction + self.stuck_fraction
        if abs(mix - 1.0) > 1e-9:
            raise DataGenError("class fractions must sum to 1", total=mix)
        if self.block_interval <= 0:
            raise DataGenError("block interval must be positive")
        if min(
            self.synced_median_delay,
            self.waverer_median_delay,
            self.stuck_median_delay,
        ) <= 0:
            raise DataGenError("median delays must be positive")


class ConsensusDynamicsGenerator:
    """Generates per-node lag time series.

    Parameters:
        num_nodes: Population size (the paper's fluctuates 8k-13k).
        seed: Root seed (fully deterministic output per seed).
        params: Model parameters.
        node_asns: Optional per-node ASN vector, carried into the
            resulting series for the Figure 8 / Table VII joins.
        as_quality: Optional ASN -> delay multiplier; values below 1
            make an AS's nodes catch up faster.  Used to calibrate the
            Table VII per-AS synced ordering.
        default_quality: Delay multiplier for nodes whose AS has no
            ``as_quality`` entry (the long tail's baseline quality).
    """

    #: Node chunk size for the vectorized pipeline (memory control).
    CHUNK = 1024

    def __init__(
        self,
        num_nodes: int,
        seed: int = 0,
        params: ConsensusModelParams = ConsensusModelParams(),
        node_asns: Optional[Sequence[int]] = None,
        as_quality: Optional[Dict[int, float]] = None,
        default_quality: float = 1.0,
    ) -> None:
        if num_nodes < 1:
            raise DataGenError("num_nodes must be positive", num=num_nodes)
        self.num_nodes = num_nodes
        self.params = params
        self.streams = RngStreams(seed)
        self.node_asns = (
            np.asarray(node_asns, dtype=np.int64) if node_asns is not None else None
        )
        if self.node_asns is not None and self.node_asns.shape[0] != num_nodes:
            raise DataGenError(
                "one ASN per node required",
                asns=self.node_asns.shape[0],
                nodes=num_nodes,
            )
        self.as_quality = dict(as_quality or {})
        if default_quality <= 0:
            raise DataGenError("default_quality must be positive")
        self.default_quality = default_quality

    # ------------------------------------------------------------------
    def generate(
        self, duration: float, sample_interval: float = 600.0
    ) -> ConsensusTimeSeries:
        """Generate ``duration`` seconds sampled every ``sample_interval``."""
        if duration <= 0 or sample_interval <= 0:
            raise DataGenError("duration and interval must be positive")
        rng = self.streams.numpy_stream("consensus")

        block_times = self._block_times(rng, duration)
        block_mult = self._block_multipliers(rng, len(block_times))
        node_scale = self._node_scales(rng)

        sample_times = np.arange(sample_interval, duration + 1e-9, sample_interval)
        num_samples = sample_times.shape[0]
        arrived = np.searchsorted(block_times, sample_times, side="right")

        lags = np.empty((num_samples, self.num_nodes), dtype=np.int16)
        for start in range(0, self.num_nodes, self.CHUNK):
            end = min(start + self.CHUNK, self.num_nodes)
            lags[:, start:end] = self._chunk_lags(
                rng,
                node_scale[start:end],
                block_times,
                block_mult,
                sample_times,
                arrived,
            )
        return ConsensusTimeSeries(
            times=sample_times, lags=lags, node_asns=self.node_asns
        )

    # ------------------------------------------------------------------
    def _block_times(self, rng: np.random.Generator, duration: float) -> np.ndarray:
        """Poisson block arrivals over [-burn_in, duration]."""
        span = duration + self.params.burn_in
        expected = int(span / self.params.block_interval) + 10
        margin = expected + int(4 * np.sqrt(expected)) + 10
        gaps = rng.exponential(self.params.block_interval, size=margin)
        times = np.cumsum(gaps) - self.params.burn_in
        while times[-1] < duration:  # pragma: no cover - extreme tail
            extra = rng.exponential(self.params.block_interval, size=margin)
            times = np.concatenate([times, times[-1] + np.cumsum(extra)])
        return times[times <= duration]

    def _block_multipliers(
        self, rng: np.random.Generator, num_blocks: int
    ) -> np.ndarray:
        """Per-block global delay multipliers: noise x storms x regime."""
        p = self.params
        noise = np.exp(rng.normal(0.0, p.storm_sigma, size=num_blocks))
        storms = np.where(
            rng.random(num_blocks) < p.storm_prob, p.storm_multiplier, 1.0
        )
        regime = np.empty(num_blocks)
        level = 0.0
        innovations = rng.normal(0.0, p.regime_sigma, size=num_blocks)
        for i in range(num_blocks):
            level = p.regime_rho * level + innovations[i]
            regime[i] = level
        return noise * storms * np.exp(regime)

    def _node_scales(self, rng: np.random.Generator) -> np.ndarray:
        """Per-node median catch-up delay (class x heterogeneity x AS)."""
        p = self.params
        classes = rng.choice(
            3,
            size=self.num_nodes,
            p=[p.synced_fraction, p.waverer_fraction, p.stuck_fraction],
        )
        medians = np.array(
            [p.synced_median_delay, p.waverer_median_delay, p.stuck_median_delay]
        )
        scale = medians[classes] * np.exp(
            rng.normal(0.0, p.node_sigma, size=self.num_nodes)
        )
        if self.node_asns is not None and (self.as_quality or self.default_quality != 1.0):
            quality = np.full(self.num_nodes, self.default_quality)
            for asn, factor in self.as_quality.items():
                quality[self.node_asns == asn] = factor
            scale = scale * quality
        return scale

    def _chunk_lags(
        self,
        rng: np.random.Generator,
        node_scale: np.ndarray,
        block_times: np.ndarray,
        block_mult: np.ndarray,
        sample_times: np.ndarray,
        arrived: np.ndarray,
    ) -> np.ndarray:
        """Lag matrix (samples x chunk) for one node chunk.

        For every (node, block) pair the sync time is
        ``block_time + scale * storm * lognormal``; the node's lag at a
        sample is the number of published blocks it has not yet synced.
        The per-node synced-block counts are accumulated with a
        bincount-style scatter over the sample grid, so the whole chunk
        is a handful of vectorized passes.
        """
        p = self.params
        chunk = node_scale.shape[0]
        num_blocks = block_times.shape[0]
        num_samples = sample_times.shape[0]

        noise = np.exp(rng.normal(0.0, p.delay_sigma, size=(chunk, num_blocks)))
        delays = node_scale[:, None] * block_mult[None, :] * noise
        sync_times = block_times[None, :] + delays

        # Scatter each sync event into the first sample index at which
        # the node counts as synced for that block.
        positions = np.searchsorted(sample_times, sync_times, side="left")
        counts = np.zeros((chunk, num_samples + 1), dtype=np.int32)
        rows = np.repeat(np.arange(chunk), num_blocks)
        np.add.at(counts, (rows, positions.ravel()), 1)
        synced_by = np.cumsum(counts[:, :num_samples], axis=1)  # (chunk, samples)

        lag = arrived[None, :] - synced_by
        np.clip(lag, 0, p.max_lag, out=lag)
        return lag.astype(np.int16).T
