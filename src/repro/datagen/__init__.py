"""Synthetic data generation calibrated to the paper's measurements.

The paper's raw dataset (80 GB of Bitnodes crawls, Feb–Apr 2018) is not
publicly archived, so this package regenerates statistically equivalent
data: every marginal the paper reports (Tables I, II, IV, V, VIII;
Figures 3, 4, 6, 8) is either pinned exactly or matched in shape.  See
DESIGN.md §2 for the substitution argument.

- :mod:`repro.datagen.profiles` — every constant the paper publishes,
  as named structures (single source of truth for calibration);
- :mod:`repro.datagen.population` — node-population generator
  producing the 2018-02-28 :class:`~repro.crawler.snapshot.NetworkSnapshot`;
- :mod:`repro.datagen.consensus` — the lag-dynamics generator behind
  Figures 6/8 and Tables V/VII;
- :mod:`repro.datagen.pools` — the Table IV mining-pool dataset;
- :mod:`repro.datagen.versions` — the Table VIII software census;
- :mod:`repro.datagen.nvd` — offline records of the CVEs cited in §V-D.
"""

from .consensus import ConsensusDynamicsGenerator, ConsensusModelParams
from .nvd import CVE_RECORDS, CveRecord, cves_affecting
from .pools import MINING_POOLS, MiningPoolRecord, pool_asn_shares, pool_org_shares
from .population import PopulationGenerator
from .versions import SOFTWARE_VERSIONS, VersionRecord, version_distribution
from .workload import TransactionWorkload, WorkloadConfig

__all__ = [
    "ConsensusDynamicsGenerator",
    "ConsensusModelParams",
    "CVE_RECORDS",
    "CveRecord",
    "cves_affecting",
    "MINING_POOLS",
    "MiningPoolRecord",
    "pool_asn_shares",
    "pool_org_shares",
    "PopulationGenerator",
    "SOFTWARE_VERSIONS",
    "VersionRecord",
    "version_distribution",
    "TransactionWorkload",
    "WorkloadConfig",
]
