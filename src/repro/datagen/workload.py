"""Transaction workload generation: wallets paying each other.

The paper's damage metrics are transaction-denominated — invalidated
transactions, reversed UTXOs, stalled confirmation.  This module gives
experiments a realistic payment stream to measure that damage on:
a set of wallets seeded with coinbase funds, issuing payments at a
Poisson rate through random entry nodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..blockchain.tx import OutPoint, Transaction, TxOutput
from ..errors import ConfigurationError
from ..types import Seconds

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.network import Network

__all__ = ["WorkloadConfig", "TransactionWorkload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Payment-stream parameters.

    Attributes:
        num_wallets: Distinct paying identities.
        tx_rate: Mean transactions per second, network-wide (Bitcoin
            2018: ~3-4 tx/s; partition experiments usually scale down).
        initial_funds: Coinbase seed value per wallet.
    """

    num_wallets: int = 20
    tx_rate: float = 0.02
    initial_funds: int = 1_000

    def __post_init__(self) -> None:
        if self.num_wallets < 2:
            raise ConfigurationError("need at least two wallets")
        if self.tx_rate <= 0:
            raise ConfigurationError("tx rate must be positive")
        if self.initial_funds <= 0:
            raise ConfigurationError("initial funds must be positive")


class TransactionWorkload:
    """Drives a Poisson payment stream through a network simulation.

    Wallet ids are offset above node ids so owners never collide with
    miners.  The workload tracks which outputs it believes unspent
    (its own view; the chain is the truth) and never double-spends on
    its own — conflicting spends are the *attacker's* job.
    """

    #: Wallet owner ids start here (above any realistic node id).
    WALLET_ID_BASE = 10_000_000

    def __init__(
        self,
        network: "Network",
        config: WorkloadConfig = WorkloadConfig(),
    ) -> None:
        self.network = network
        self.config = config
        self._rng = network.streams.stream("workload")
        self._wallets = [
            self.WALLET_ID_BASE + i for i in range(config.num_wallets)
        ]
        # wallet -> spendable outpoints (the workload's own ledger view).
        self._spendable: Dict[int, List[OutPoint]] = {}
        self._values: Dict[OutPoint, int] = {}
        self.submitted: List[Transaction] = []
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Seed wallets with funds and begin the payment stream."""
        if self._running:
            return
        self._running = True
        for index, wallet in enumerate(self._wallets):
            seed_tx = Transaction.make_coinbase(
                miner=wallet, value=self.config.initial_funds, nonce=index
            )
            self._track(wallet, seed_tx)
            self._submit(seed_tx)
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        delay = self._rng.expovariate(self.config.tx_rate)
        self.network.sim.schedule(delay, self._issue_payment)

    def _issue_payment(self) -> None:
        if not self._running:
            return
        funded = [w for w in self._wallets if self._spendable.get(w)]
        if funded:
            payer = self._rng.choice(funded)
            payee = self._rng.choice(
                [w for w in self._wallets if w != payer]
            )
            outpoint = self._spendable[payer].pop(0)
            value = self._values.pop(outpoint)
            spend_value = max(1, value // 2)
            outputs = [TxOutput(owner=payee, value=spend_value)]
            change = value - spend_value
            if change > 0:
                outputs.append(TxOutput(owner=payer, value=change))
            tx = Transaction.make_payment(
                spend=[outpoint], outputs=outputs, nonce=len(self.submitted)
            )
            self._track_payment(tx, payee, payer)
            self._submit(tx)
        self._schedule_next()

    def _track(self, wallet: int, tx: Transaction) -> None:
        for index, output in enumerate(tx.outputs):
            outpoint = OutPoint(tx.txid, index)
            self._spendable.setdefault(output.owner, []).append(outpoint)
            self._values[outpoint] = output.value

    def _track_payment(self, tx: Transaction, payee: int, payer: int) -> None:
        self._track(payee, tx)  # registers every output by owner

    def _submit(self, tx: Transaction) -> None:
        entry = self._rng.choice(list(self.network.nodes))
        self.network.submit_transaction(entry, tx)
        self.submitted.append(tx)

    # ------------------------------------------------------------------
    # Damage measurement
    # ------------------------------------------------------------------
    def confirmed_on(self, node_id: int) -> List[Transaction]:
        """Workload transactions confirmed on ``node_id``'s main chain."""
        node = self.network.node(node_id)
        txids = {tx.txid for tx in self.submitted}
        return [
            tx
            for block in node.tree.main_chain()
            for tx in block.transactions
            if tx.txid in txids
        ]

    def confirmation_rate(self, node_id: int) -> float:
        """Share of submitted transactions confirmed at ``node_id``."""
        if not self.submitted:
            return 0.0
        return len(self.confirmed_on(node_id)) / len(self.submitted)

    def divergent_confirmations(self, node_a: int, node_b: int) -> int:
        """Transactions confirmed on exactly one of two nodes' chains —
        the partition's transaction-level damage (§V-B implications)."""
        a = {tx.txid for tx in self.confirmed_on(node_a)}
        b = {tx.txid for tx in self.confirmed_on(node_b)}
        return len(a ^ b)
