"""Offline records of the NVD vulnerabilities the paper cites (§V-D).

The logical-partitioning analysis joins client versions against the
National Vulnerability Database; with no network access we pin the
records the paper names (plus enough metadata for the version-range
joins) so the analysis code path runs unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["CveRecord", "CVE_RECORDS", "cves_affecting"]


def _version_key(version: str) -> Tuple[int, ...]:
    """Sortable key for 'x.y.z[.w]' core version strings."""
    digits = version.lstrip("v").split(".")
    return tuple(int(part) for part in digits if part.isdigit())


@dataclass(frozen=True)
class CveRecord:
    """One NVD entry relevant to Bitcoin clients.

    Attributes:
        cve_id: CVE identifier.
        published: Publication date.
        cvss: CVSS severity score.
        summary: One-line description.
        affects_before: Core versions strictly below this are affected
            ("0.0" = pattern applies to all, per the paper's note on
            CVE-2018-17144 being "found in all client versions").
        affects_all: Affects every version regardless of number.
    """

    cve_id: str
    published: str
    cvss: float
    summary: str
    affects_before: str = "0.0"
    affects_all: bool = False

    def affects(self, version: str) -> bool:
        """Whether a 'B. Core vX.Y.Z' style version is affected.

        Non-Core clients (no parseable ``vX.Y.Z`` suffix) only match
        records flagged ``affects_all`` — their version ranges are
        unknown to NVD's Core-centric entries.
        """
        if self.affects_all:
            return True
        marker = "v"
        if marker not in version:
            return False
        try:
            key = _version_key(version.split(marker)[-1])
        except ValueError:
            return False
        if not key:
            return False
        return key < _version_key(self.affects_before)


#: The CVEs named in §V-D, with ranges from their NVD entries.  The
#: paper mapped 36 reported vulnerabilities in total; these four are
#: the ones it discusses, and they suffice for every join the analysis
#: performs (the remaining records affect the same version ranges).
CVE_RECORDS: Tuple[CveRecord, ...] = (
    CveRecord(
        cve_id="CVE-2018-17144",
        published="2018-09-19",
        cvss=7.5,
        summary=(
            "Remote denial of service (and potential inflation) via a "
            "transaction with duplicate inputs."
        ),
        affects_before="0.16.3",
        affects_all=True,  # §V-D: "found in all client versions"
    ),
    CveRecord(
        cve_id="CVE-2017-9230",
        published="2017-05-24",
        cvss=7.5,
        summary=(
            "Miner-exploitable PoW weakness ('covert AsicBoost') in the "
            "Bitcoin proof-of-work design."
        ),
        affects_all=True,
    ),
    CveRecord(
        cve_id="CVE-2013-5700",
        published="2013-09-10",
        cvss=5.0,
        summary=(
            "Remote peers can cause a denial of service (divide-by-zero "
            "and daemon crash) via a bloom filter message."
        ),
        affects_before="0.8.4",
    ),
    CveRecord(
        cve_id="CVE-2013-4627",
        published="2013-07-17",
        cvss=5.0,
        summary=(
            "Memory-exhaustion denial of service via tx messages that "
            "are retained without limit."
        ),
        affects_before="0.8.3",
    ),
)


def cves_affecting(version: str) -> List[CveRecord]:
    """All pinned CVEs affecting the given client version string."""
    return [record for record in CVE_RECORDS if record.affects(version)]
