"""The Table IV mining-pool dataset.

The paper gathered pool hash rates from Blockchain.info and resolved
each pool's public stratum address to the AS hosting it (§V-A).  The
result is static data; we pin it verbatim, including the organization
grouping under which "AliBaba has a view of at least 60% of the mining
data" and "65.7% mining data goes through only three organizations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import DataGenError

__all__ = [
    "MiningPoolRecord",
    "MINING_POOLS",
    "OTHERS_HASH_SHARE",
    "pool_asn_shares",
    "pool_org_shares",
    "group_shares",
]


@dataclass(frozen=True)
class MiningPoolRecord:
    """Table IV row.

    Attributes:
        name: Pool name.
        hash_share: Fraction of the global hash rate.
        stratum_asns: ASes hosting the pool's stratum endpoints; the
            share is split evenly across them (the paper lists multiple
            ASes for BTC.com and F2Pool).
        org_names: Owning organizations per stratum AS (parallel list).
        org_group: Corporate group used for the ">=60% AliBaba" claim
            (both Alibaba organizations share one group).
    """

    name: str
    hash_share: float
    stratum_asns: Tuple[int, ...]
    org_names: Tuple[str, ...]
    org_group: str

    def __post_init__(self) -> None:
        if not 0.0 < self.hash_share <= 1.0:
            raise DataGenError("hash share out of range", pool=self.name)
        if len(self.stratum_asns) != len(self.org_names):
            raise DataGenError("one org per stratum AS required", pool=self.name)


#: Table IV, verbatim (top-5 pools; 12 others aggregate 34.3%).
MINING_POOLS: Tuple[MiningPoolRecord, ...] = (
    MiningPoolRecord(
        name="BTC.com",
        hash_share=0.25,
        stratum_asns=(37963, 45102),
        org_names=("Hangzhou Alibaba", "AliBaba (China)"),
        org_group="AliBaba",
    ),
    MiningPoolRecord(
        name="Antpool",
        hash_share=0.124,
        stratum_asns=(45102,),
        org_names=("AliBaba (China)",),
        org_group="AliBaba",
    ),
    MiningPoolRecord(
        name="ViaBTC",
        hash_share=0.117,
        stratum_asns=(45102,),
        org_names=("AliBaba (China)",),
        org_group="AliBaba",
    ),
    MiningPoolRecord(
        name="BTC.TOP",
        hash_share=0.103,
        stratum_asns=(45102,),
        org_names=("AliBaba (China)",),
        org_group="AliBaba",
    ),
    MiningPoolRecord(
        name="F2Pool",
        hash_share=0.063,
        stratum_asns=(45102, 58563),
        org_names=("AliBaba (China)", "Chinanet Hubei"),
        org_group="F2Pool",
    ),
)

#: Table IV's "12 others" row: pools excluded from the study.
OTHERS_HASH_SHARE = 0.343


def pool_asn_shares() -> Dict[int, float]:
    """Hash share routed through each AS (even split across a pool's
    stratum ASes)."""
    shares: Dict[int, float] = {}
    for pool in MINING_POOLS:
        per_as = pool.hash_share / len(pool.stratum_asns)
        for asn in pool.stratum_asns:
            shares[asn] = shares.get(asn, 0.0) + per_as
    return shares


def pool_org_shares() -> Dict[str, float]:
    """Hash share visible to each organization.

    An organization "has a view" of a pool's full share if it hosts any
    of the pool's stratum endpoints — the paper counts BTC.com's 25%
    entirely toward AliBaba because both its endpoints are in Alibaba
    ASes.
    """
    shares: Dict[str, float] = {}
    for pool in MINING_POOLS:
        for org in sorted(set(pool.org_names)):
            shares[org] = shares.get(org, 0.0) + pool.hash_share
    return shares


def group_shares() -> Dict[str, float]:
    """Hash share per corporate group (the >=60% AliBaba statistic)."""
    shares: Dict[str, float] = {}
    for pool in MINING_POOLS:
        groups = set()
        for org in pool.org_names:
            groups.add("AliBaba" if "AliBaba" in org or "Alibaba" in org else org)
        for group in sorted(groups):
            shares[group] = shares.get(group, 0.0) + pool.hash_share
    return shares


def top_pool_coverage() -> float:
    """Aggregate share of the studied top-5 pools (the paper's 65.7%)."""
    return sum(pool.hash_share for pool in MINING_POOLS)
