"""Every published constant of the paper, as named structures.

This module is the single calibration source: generators consume these
profiles, and the test suite checks reproduced artifacts against them.
Nothing here is invented — each value is traceable to a table, figure,
or sentence of the paper (references in comments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..types import AddressType

__all__ = [
    "TypeProfile",
    "SNAPSHOT_DATE",
    "TOTAL_NODES",
    "UP_NODES",
    "DOWN_NODES",
    "SYNCED_NODES",
    "BEHIND_NODES",
    "TYPE_PROFILES",
    "CENTRALIZATION_2017",
    "CENTRALIZATION_2018",
    "TABLE_V_ROWS",
    "TABLE_VI_LAMBDAS",
    "TABLE_VI_M_VALUES",
    "TABLE_VI_REFERENCE",
    "TABLE_VII_ROWS",
    "FIVE_MIN_BEHIND_FRACTION",
    "ATTACKER_HASH_SHARE",
    "SPAN_RATIO_TARGET",
    "TOTAL_WORLD_ASES",
]

#: §IV-C: date of the headline snapshot.
SNAPSHOT_DATE = "2018-02-28"

#: §IV-C: reachable full nodes in the snapshot.
TOTAL_NODES = 13_635
#: §IV-C: nodes up / down at collection time (83.47% / 16.52%).
UP_NODES = 11_382
DOWN_NODES = 2_253
#: §IV-C: nodes with the most updated chain copy (45.14%) vs behind.
SYNCED_NODES = 6_155
BEHIND_NODES = 7_480

#: RIR total used for the AS percentages in §V-A.
TOTAL_WORLD_ASES = 84_903


@dataclass(frozen=True)
class TypeProfile:
    """Table I row: per-address-family population statistics."""

    count: int
    link_speed_mean: float
    link_speed_std: float
    latency_mean: float
    latency_std: float
    uptime_mean: float
    uptime_std: float


#: Table I, verbatim.
TYPE_PROFILES: Dict[AddressType, TypeProfile] = {
    AddressType.IPV4: TypeProfile(12_737, 25.04, 258.80, 0.70, 0.45, 0.68, 0.44),
    AddressType.IPV6: TypeProfile(579, 23.06, 245.36, 0.86, 0.35, 0.67, 0.42),
    AddressType.TOR: TypeProfile(319, 432.67, 1046.5, 0.24, 0.25, 0.76, 0.37),
}

#: Table III: ASes covering 30% / 50% of nodes, 2017 (Apostolaki et al.)
#: and 2018 (this paper).
CENTRALIZATION_2017 = {"half": 50, "third": 13}
CENTRALIZATION_2018 = {"half": 24, "third": 8}

#: Table V, verbatim: T minutes -> (count >= 1 block, >= 2, >= 5) and
#: the percentages the paper prints next to them.
TABLE_V_ROWS: Tuple[Tuple[int, Tuple[int, int, int], Tuple[float, float, float]], ...] = (
    (5, (6280, 3206, 966), (62.67, 31.99, 9.68)),
    (10, (1761, 1189, 955), (27.13, 11.87, 9.53)),
    (15, (1141, 1083, 952), (11.39, 10.81, 12.00)),
    (20, (1109, 1023, 947), (13.97, 15.76, 11.93)),
    (25, (1070, 1013, 942), (10.68, 15.61, 9.40)),
    (30, (1042, 984, 942), (10.39, 9.82, 9.39)),
    (40, (1040, 984, 940), (10.37, 9.82, 9.38)),
    (70, (1036, 976, 929), (10.34, 9.74, 9.27)),
    (200, (908, 887, 821), (9.08, 8.82, 8.16)),
)

#: Table VI axes and reference values (seconds), verbatim.
TABLE_VI_LAMBDAS: Tuple[float, ...] = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
TABLE_VI_M_VALUES: Tuple[int, ...] = (100, 300, 500, 800, 1000, 1200, 1500)
TABLE_VI_REFERENCE: Dict[float, Tuple[int, ...]] = {
    0.4: (142, 424, 705, 1127, 1610, 2313, 3517),
    0.5: (133, 397, 661, 1057, 1320, 1851, 2814),
    0.6: (127, 379, 630, 1007, 1258, 1545, 2345),
    0.7: (122, 365, 607, 970, 1213, 1455, 2010),
    0.8: (119, 354, 589, 942, 1177, 1412, 1765),
    0.9: (116, 346, 575, 920, 1149, 1379, 1723),
}

#: Table VII, verbatim: top ASes hosting the synced nodes of the
#: Figure 6(b) day.
TABLE_VII_ROWS: Tuple[Tuple[int, str, int, float], ...] = (
    (4134, "No.31, Jin-rong", 993, 9.57),
    (24940, "Hetzner Online", 830, 7.98),
    (16276, "OVH SAS", 530, 5.22),
    (16509, "Amazon.com", 417, 4.19),
    (14061, "DigitalOcean", 332, 3.23),
)

#: Abstract / Table V headline: 5 minutes after a block, ~62.7% of
#: nodes remain >= 1 block behind.
FIVE_MIN_BEHIND_FRACTION = 0.627

#: §V-B: the simulated temporal attacker's hash share (Figure 7).
ATTACKER_HASH_SHARE = 0.30

#: §V-B: the span ratio at which the simulated network stays fully
#: synchronized between blocks.
SPAN_RATIO_TARGET = 2.0
