"""Node-population generator: the 2018-02-28 snapshot, regenerated.

Produces a :class:`~repro.crawler.snapshot.NetworkSnapshot` whose every
published marginal matches §IV-C and Table I exactly where the paper
pins a count (node totals, address-type counts, up/down, synced/behind)
and distributionally where the paper reports moments (link speed,
latency and uptime indices).  Spatial attributes come from a
paper-calibrated :class:`~repro.topology.topology.Topology`, so Table
II and Figures 3/4 are consistent with the same snapshot.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..crawler.snapshot import NetworkSnapshot, NodeRecord
from ..errors import DataGenError
from ..rng import RngStreams
from ..topology.asn import TOR_PSEUDO_ASN
from ..topology.topology import Topology
from ..types import AddressType
from . import profiles
from .versions import version_distribution

__all__ = ["PopulationGenerator", "sample_index", "sample_link_speed"]


def sample_link_speed(rng: random.Random, mean: float, std: float) -> float:
    """Sample a link speed (Mbps) with the given moments.

    The paper's speeds are extremely heavy-tailed (IPv4: mean 25 Mbps,
    std 259 Mbps), which a lognormal reproduces: matching moments gives
    ``sigma^2 = ln(1 + std^2/mean^2)``, ``mu = ln(mean) - sigma^2/2``.
    """
    if mean <= 0 or std < 0:
        raise DataGenError("invalid link-speed moments", mean=mean, std=std)
    sigma2 = math.log(1.0 + (std / mean) ** 2)
    mu = math.log(mean) - sigma2 / 2.0
    return rng.lognormvariate(mu, math.sqrt(sigma2))


def sample_index(rng: random.Random, mean: float, std: float) -> float:
    """Sample a [0,1] quality index with the given moments.

    The paper's index deviations are near the Bernoulli maximum
    (e.g. latency 0.70 +/- 0.45 where a coin with p=0.7 has std 0.458),
    so when the requested variance is feasible for a Beta distribution
    we use moment-matched Beta; otherwise we fall back to the Bernoulli
    that attains it.
    """
    if not 0.0 < mean < 1.0:
        raise DataGenError("index mean must be inside (0,1)", mean=mean)
    variance = std * std
    limit = mean * (1.0 - mean)
    if variance >= limit * 0.98:
        return 1.0 if rng.random() < mean else 0.0
    concentration = limit / variance - 1.0
    alpha = mean * concentration
    beta = (1.0 - mean) * concentration
    return rng.betavariate(alpha, beta)


@dataclass
class PopulationGenerator:
    """Generates the paper-calibrated node population.

    Parameters:
        topology: Spatial ground truth (node ids 0..N-1 must be hosted).
        seed: Root seed; generation is deterministic per seed.

    The topology's Tor pseudo-AS nodes become the 319 Tor records;
    579 of the remaining nodes are marked IPv6 (the paper's count) and
    the rest IPv4 — the published totals line up exactly because the
    calibrated topology hosts 13,635 nodes of which 319 are Tor.
    """

    topology: Topology
    seed: int = 0

    def generate(self, timestamp: float = 0.0) -> NetworkSnapshot:
        streams = RngStreams(self.seed)
        rng = streams.stream("population")

        node_ids = sorted(self.topology.all_node_ids())
        total = len(node_ids)
        tor_ids = set(self.topology.nodes_in_as(TOR_PSEUDO_ASN))
        non_tor = [nid for nid in node_ids if nid not in tor_ids]

        ipv6_target = min(
            profiles.TYPE_PROFILES[AddressType.IPV6].count, len(non_tor)
        )
        ipv6_ids = set(rng.sample(non_tor, ipv6_target))

        up_target = round(total * profiles.UP_NODES / profiles.TOTAL_NODES)
        up_ids = set(rng.sample(node_ids, up_target))

        synced_target = round(total * profiles.SYNCED_NODES / profiles.TOTAL_NODES)
        up_list = [nid for nid in node_ids if nid in up_ids]
        synced_ids = set(rng.sample(up_list, min(synced_target, len(up_list))))

        lag_assignment = self._behind_lags(
            [nid for nid in up_list if nid not in synced_ids], rng
        )
        version_of = self._version_assignment(node_ids, rng)

        records: List[NodeRecord] = []
        for node_id in node_ids:
            addr_type = (
                AddressType.TOR
                if node_id in tor_ids
                else AddressType.IPV6
                if node_id in ipv6_ids
                else AddressType.IPV4
            )
            profile = profiles.TYPE_PROFILES[addr_type]
            asn = self.topology.asn_of(node_id)
            asys = self.topology.ases.get(asn)
            records.append(
                NodeRecord(
                    node_id=node_id,
                    address_type=addr_type,
                    asn=asn,
                    org_id=asys.org_id,
                    country=asys.country,
                    up=node_id in up_ids,
                    link_speed_mbps=sample_link_speed(
                        rng, profile.link_speed_mean, profile.link_speed_std
                    ),
                    latency_idx=sample_index(
                        rng, profile.latency_mean, profile.latency_std
                    ),
                    uptime_idx=sample_index(
                        rng, profile.uptime_mean, profile.uptime_std
                    ),
                    block_idx=lag_assignment.get(node_id, 0),
                    software_version=version_of[node_id],
                )
            )
        return NetworkSnapshot(timestamp=timestamp, records=records)

    # ------------------------------------------------------------------
    #: Lag-band weights for up-but-behind nodes, matching Figure 6's
    #: proportions: 1 block is the most frequent delay, then 2-4, with
    #: a persistent ~10%-of-network tail of deeply lagging nodes.
    BEHIND_BAND_WEIGHTS: Tuple[Tuple[Tuple[int, int], float], ...] = (
        ((1, 1), 0.52),
        ((2, 4), 0.28),
        ((5, 10), 0.11),
        ((11, 40), 0.09),
    )

    def _behind_lags(
        self, behind_ids: List[int], rng: random.Random
    ) -> Dict[int, int]:
        lags: Dict[int, int] = {}
        bounds = [band for band, _ in self.BEHIND_BAND_WEIGHTS]
        weights = [weight for _, weight in self.BEHIND_BAND_WEIGHTS]
        for node_id in behind_ids:
            low, high = rng.choices(bounds, weights=weights, k=1)[0]
            lags[node_id] = rng.randint(low, high)
        return lags

    def _version_assignment(
        self, node_ids: List[int], rng: random.Random
    ) -> Dict[int, str]:
        counts = version_distribution(len(node_ids))
        pool: List[str] = []
        for version, count in counts.items():
            pool.extend([version] * count)
        if len(pool) != len(node_ids):
            raise DataGenError(
                "version pool size mismatch",
                pool=len(pool),
                nodes=len(node_ids),
            )
        rng.shuffle(pool)
        return dict(zip(node_ids, pool))
