"""repro-lint: AST-based determinism & parallel-safety linter.

The paper's quantitative claims (the span-ratio law, the Fig. 6-8
fork/partition curves) are only reproducible if every stochastic draw
flows through :class:`repro.rng.RngStreams` / :func:`repro.rng.derive_seed`
and no simulation state leaks across instances or processes.  PR 1's
parallel trial engine made that discipline load-bearing — and its
hardest bug (``MiningPool``'s process-global ``itertools.count`` pool
id) was found by hand.  This package makes the discipline
machine-checked: a static-analysis pass over the repo's own source
tree with per-rule IDs, ``# repro-lint: disable=RULE`` suppressions,
text/JSON reporters, and a ``repro-lint`` console entry point.

Public API::

    from repro.lint import lint_paths, lint_source, RULES

    report = lint_paths(["src", "benchmarks", "tests"])
    for finding in report.findings:
        print(finding.path, finding.line, finding.rule_id)
"""

from .core import (
    PARSE_ERROR_ID,
    FileReport,
    Finding,
    ImportMap,
    RunReport,
    Suppressions,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    module_dotted_path,
    parse_suppressions,
)
from .rules import RULES, rule_by_identifier

__all__ = [
    "PARSE_ERROR_ID",
    "FileReport",
    "Finding",
    "ImportMap",
    "RULES",
    "RunReport",
    "Suppressions",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_dotted_path",
    "parse_suppressions",
    "rule_by_identifier",
]
