"""Shared manifest drift-gate machinery for every analyzer tier.

Each whole-program tool (``repro-audit``, ``repro-vec``, ``repro-flow``)
commits a deterministic JSON ledger of its account of the source —
sanctioned effects, hot paths, key-material exceptions — and gates CI
on it: ``--check-manifest`` re-derives the payload from source and
fails with a unified diff when the committed copy has drifted.  The
rendering and diffing halves of that contract are identical across
tiers, so they live here once; each tier keeps only its own
``build_manifest`` (what goes *in* the ledger is tier-specific).
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["diff_manifest", "render_manifest"]


def render_manifest(manifest: Dict[str, Any]) -> str:
    """Byte-stable serialization (what gets committed)."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def diff_manifest(
    manifest: Dict[str, Any], path: Union[str, Path]
) -> Optional[str]:
    """Unified diff committed-vs-derived, or None when they match.

    A missing committed manifest diffs against the empty file, so the
    first ``--check-manifest`` run tells the operator exactly what to
    commit rather than crashing.
    """
    manifest_path = Path(path)
    expected = render_manifest(manifest)
    actual = (
        manifest_path.read_text(encoding="utf-8")
        if manifest_path.exists()
        else ""
    )
    if actual == expected:
        return None
    return "".join(
        difflib.unified_diff(
            actual.splitlines(keepends=True),
            expected.splitlines(keepends=True),
            fromfile=f"{manifest_path} (committed)",
            tofile=f"{manifest_path} (derived from source)",
        )
    )
