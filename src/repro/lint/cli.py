"""``repro-lint`` console entry point.

Usage::

    repro-lint                       # lint src benchmarks tests
    repro-lint src/repro/netsim      # lint a subtree
    repro-lint --select RPL104       # run one rule
    repro-lint --ignore set-order    # run all but one (IDs or names)
    repro-lint --format json         # machine-readable report
    repro-lint --list-rules          # rule catalogue with rationale

Exit codes: 0 clean, 1 findings, 2 usage error — so CI can gate on it
directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core import lint_paths
from .reporters import render_json, render_text
from .rules import RULES, rule_by_identifier

__all__ = ["main"]

_DEFAULT_PATHS = ["src", "benchmarks", "tests", "examples"]


def _split_rule_list(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    names = [part.strip() for chunk in values for part in chunk.split(",")]
    return [name for name in names if name]


def _render_rule_list() -> str:
    from .core import PARSE_ERROR_ID

    lines = ["repro-lint rules:"]
    for rule in RULES:
        lines.append(f"  {rule.rule_id}  {rule.name:<20} {rule.summary}")
        lines.append(f"          {rule.rationale}")
    lines.append(
        f"  {PARSE_ERROR_ID}  {'parse-error':<20} "
        "file does not parse (pseudo-rule)"
    )
    lines.append(
        "          Reported whenever a file fails to parse as Python: a "
        "file the AST rejects can never be certified clean, so the run "
        "fails. Not selectable via --select/--ignore and not "
        "suppressible — fix the syntax error."
    )
    lines.append(
        "suppress a finding with `# repro-lint: disable=<ID> <reason>`; "
        "skip a fixture file with a leading `# repro-lint: disable-file "
        "<reason>` comment"
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & parallel-safety linter for the repro "
            "source tree (see the README section 'Determinism rules')."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        help="comma-separated rule IDs/names to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        help="comma-separated rule IDs/names to skip",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the per-file analysis (default: 1); "
            "the report is identical at any worker count"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rule_list())
        return 0

    select = _split_rule_list(args.select)
    ignore = _split_rule_list(args.ignore)
    try:
        for name in (select or []) + (ignore or []):
            rule_by_identifier(name)
    except KeyError as exc:
        print(f"repro-lint: error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.jobs < 1:
        print("repro-lint: error: --jobs must be >= 1", file=sys.stderr)
        return 2

    paths = args.paths if args.paths else list(_DEFAULT_PATHS)
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(
            f"repro-lint: error: no such path(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    report = lint_paths(paths, select=select, ignore=ignore, jobs=args.jobs)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
