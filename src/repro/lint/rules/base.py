"""Rule protocol and shared AST scope/shape helpers.

Every rule is a stateless object with identity metadata (``rule_id``,
``name``, ``summary``, ``rationale``) and a ``check(module)`` method
returning findings.  The helpers here implement the two analyses most
rules share: resolving which names are *local* to a function scope
(so instance/local state is never confused with module globals) and
recognising expression shapes (set-valued expressions, RNG draw calls).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..core import Finding, ModuleInfo

__all__ = [
    "RNG_DRAW_METHODS",
    "Rule",
    "function_defs",
    "local_bindings",
    "walk_scope",
]

#: Method names that draw from a generator (stdlib ``random.Random`` and
#: ``numpy.random.Generator`` vocabularies).  Used to decide whether a
#: loop body consumes randomness.
RNG_DRAW_METHODS = frozenset(
    {
        # stdlib random.Random
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "uniform",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        # numpy.random.Generator
        "normal",
        "standard_normal",
        "integers",
        "exponential",
        "poisson",
        "binomial",
        "geometric",
        "gamma",
        "beta",
        "chisquare",
        "multinomial",
        "permutation",
        "permuted",
    }
)


class Rule:
    """Base class: identity metadata plus the ``check`` hook."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, module: ModuleInfo) -> List[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            rule_name=self.name,
            message=message,
        )


def walk_scope(nodes) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class bodies.

    The nested ``FunctionDef``/``Lambda``/``ClassDef`` node itself *is*
    yielded (so callers can see that a name gets bound) but its body is
    a different scope and is skipped.
    """
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _target_names(target: ast.AST) -> Set[str]:
    # Only Store-context names bind: in ``registry[key] = v`` the name
    # ``registry`` is a Load (the mutation rule depends on seeing that).
    return {
        node.id
        for node in ast.walk(target)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store)
    }


def local_bindings(fn: ast.AST) -> Set[str]:
    """Names bound in ``fn``'s direct scope (params, assignments, ...).

    Names declared ``global`` are excluded even when assigned, since
    those assignments hit module state — exactly what rules like
    global-state need to see through.
    """
    names: Set[str] = set()
    declared_global: Set[str] = set()
    args = fn.args
    for arg in (
        list(getattr(args, "posonlyargs", []))
        + list(args.args)
        + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in walk_scope(fn.body):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_target_names(item.optional_vars))
        elif isinstance(node, ast.NamedExpr):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Global):
            declared_global.update(node.names)
    return names - declared_global


def function_defs(tree: ast.AST) -> List[ast.AST]:
    """Every function/method definition anywhere in the module."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
