"""RPL106 cache-key: id- or order-dependent values in cache key material.

``ResultCache`` keys are SHA-256 hashes over a canonical JSON encoding
of ``(experiment_id, config, seed, code_version)``; values JSON cannot
encode fall back to ``repr()``.  That fallback is a trap: a ``set``'s
repr depends on hash randomization (different across processes for
strings), and lambdas / ``object()`` / generator reprs embed memory
addresses.  Any of these reaching key material means the same logical
config hashes to a *different key every run* — the cache silently
never hits, or worse, collides only within one process and hides the
recompute bug.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..core import Finding, ModuleInfo
from .base import Rule

__all__ = ["CacheKeyRule"]

_CACHE_METHODS = frozenset({"get", "put", "key", "entry_path", "discard"})


def _hazard(module: ModuleInfo, node: ast.AST) -> Optional[str]:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set (iteration-order-dependent repr)"
    if isinstance(node, ast.Lambda):
        return "lambda (memory-address repr)"
    if isinstance(node, ast.GeneratorExp):
        return "generator (memory-address repr)"
    if isinstance(node, ast.Call):
        canonical = module.resolve(node.func)
        if canonical in ("set", "frozenset"):
            return f"{canonical}() (iteration-order-dependent repr)"
        if canonical == "object":
            return "object() (memory-address repr)"
    return None


def _is_cache_receiver(module: ModuleInfo, receiver: ast.AST) -> bool:
    if isinstance(receiver, ast.Call):
        canonical = module.resolve(receiver.func)
        return bool(canonical) and canonical.split(".")[-1] == "ResultCache"
    parts = module.imports.dotted_parts(receiver)
    if parts:
        return "cache" in parts[-1].lower()
    return False


class CacheKeyRule(Rule):
    rule_id = "RPL106"
    name = "cache-key"
    summary = "id/order-dependent value reaches ResultCache key material"
    rationale = (
        "Cache keys hash a canonical encoding of the config; values "
        "that fall back to repr() (sets, lambdas, bare objects, "
        "generators) make the key differ across runs, so the cache "
        "never hits. Use sorted lists and plain data instead."
    )

    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_cache_call = False
            call_desc = ""
            canonical = module.resolve(func)
            if canonical and canonical.split(".")[-1] == "cache_key":
                is_cache_call = True
                call_desc = "cache_key()"
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _CACHE_METHODS
                and _is_cache_receiver(module, func.value)
            ):
                is_cache_call = True
                call_desc = f".{func.attr}()"
            if not is_cache_call:
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                for sub in ast.walk(argument):
                    reason = _hazard(module, sub)
                    if reason is not None:
                        findings.append(
                            self.finding(
                                module,
                                sub,
                                f"{reason} in key material of {call_desc}; "
                                "its repr is unstable across runs, so the "
                                "cache key never matches — encode as a "
                                "sorted list / plain data",
                            )
                        )
        return findings
