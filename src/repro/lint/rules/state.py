"""RPL102 global-state: module-level mutable state mutated from functions.

This is the exact class of the PR 1 ``MiningPool`` bug: a module-level
``itertools.count()`` handed out pool ids, so the ids a network's pools
received depended on how many pools *any other* network in the process
had already created — block hashes (seeded from pool ids) diverged
between a fresh process and a process that had run an earlier trial,
breaking cross-process determinism.  The fix scoped the counter
per-network; this rule mechanises the review that found it.

Only *known-mutable* module-level bindings are tracked (list/dict/set
displays and comprehensions, ``list()``/``dict()``/``set()``,
``itertools.count()``, ``collections.Counter/defaultdict/deque/
OrderedDict``), and only *mutations from inside function or method
bodies* are flagged: building a constant table at import time is fine,
and instance-scoped state (``self._counter = itertools.count()``, as in
``netsim/events.py``) never matches because the rule tracks bare module
names, not attributes.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from ..core import Finding, ModuleInfo
from .base import Rule, function_defs, local_bindings, walk_scope

__all__ = ["GlobalStateRule", "module_mutables"]

_MUTABLE_CALLS = frozenset(
    {
        "itertools.count",
        "collections.Counter",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "list",
        "dict",
        "set",
    }
)

_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "popleft",
        "extendleft",
        "rotate",
        "subtract",
    }
)


def module_mutables(module: ModuleInfo) -> Dict[str, Tuple[int, str]]:
    """Module-level names bound to known-mutable values: name -> (line, kind)."""
    mutables: Dict[str, Tuple[int, str]] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if value is None:
            continue
        kind = None
        if isinstance(value, (ast.List, ast.ListComp)):
            kind = "list"
        elif isinstance(value, (ast.Dict, ast.DictComp)):
            kind = "dict"
        elif isinstance(value, (ast.Set, ast.SetComp)):
            kind = "set"
        elif isinstance(value, ast.Call):
            canonical = module.resolve(value.func)
            if canonical in _MUTABLE_CALLS:
                kind = canonical
        if kind is None:
            continue
        for target in targets:
            mutables[target.id] = (stmt.lineno, kind)
    return mutables


class GlobalStateRule(Rule):
    rule_id = "RPL102"
    name = "global-state"
    summary = "process-global mutable state mutated from a function/method"
    rationale = (
        "A module-level counter/list/dict mutated from methods couples "
        "every instance in the process (the MiningPool pool-id bug): "
        "results depend on what else ran earlier in the same process. "
        "Scope the state per-instance or pass it explicitly."
    )

    def check(self, module: ModuleInfo) -> List[Finding]:
        mutables = module_mutables(module)
        if not mutables:
            return []
        findings: List[Finding] = []
        for fn in function_defs(module.tree):
            locals_ = local_bindings(fn)
            declared_global: Set[str] = set()
            for node in walk_scope(fn.body):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)

            def is_global(name: str) -> bool:
                return name in mutables and (
                    name not in locals_ or name in declared_global
                )

            for node in walk_scope(fn.body):
                name = None
                verb = None
                if isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Name)
                        and func.id == "next"
                        and node.args
                        and isinstance(node.args[0], ast.Name)
                        and is_global(node.args[0].id)
                    ):
                        name, verb = node.args[0].id, "advances"
                    elif (
                        isinstance(func, ast.Attribute)
                        and func.attr in _MUTATOR_METHODS
                        and isinstance(func.value, ast.Name)
                        and is_global(func.value.id)
                    ):
                        name, verb = func.value.id, f".{func.attr}() mutates"
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and is_global(target.value.id)
                        ):
                            name, verb = target.value.id, "item-assignment mutates"
                        elif (
                            isinstance(target, ast.Name)
                            and target.id in declared_global
                            and target.id in mutables
                        ):
                            name, verb = target.id, "rebinding (via global) replaces"
                if name is None:
                    continue
                line, kind = mutables[name]
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{verb} module-global '{name}' ({kind}, defined line "
                        f"{line}) from inside a function; process-global "
                        "mutable state makes results depend on process "
                        "history (the MiningPool pool-id bug) — scope it "
                        "per-instance or pass it explicitly",
                    )
                )
        return findings
