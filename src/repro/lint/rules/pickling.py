"""RPL105 unpicklable-worker: lambdas/closures handed to the trial engine.

``TrialEngine.map``/``first_match`` ship ``(fn, trial)`` pairs to
worker processes by pickling; pickle serialises functions *by
reference* (module + qualified name), so lambdas and functions nested
inside other functions either raise ``PicklingError`` at fan-out time
or — worse, with ``jobs=1`` inline execution — work in tests and die
only when someone first passes ``--jobs 4``.  Only the *worker slot*
(the first argument) must be picklable: ``first_match`` predicates and
fallbacks run in the parent, so a lambda predicate is fine and is not
flagged.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from ..core import Finding, ModuleInfo
from .base import Rule, function_defs

__all__ = ["UnpicklableWorkerRule", "is_engine_receiver"]

_ENGINE_METHODS = frozenset({"map", "first_match"})


def is_engine_receiver(module: ModuleInfo, receiver: ast.AST) -> bool:
    """Does this expression look like a TrialEngine instance?"""
    if isinstance(receiver, ast.Call):
        canonical = module.resolve(receiver.func)
        return bool(canonical) and canonical.split(".")[-1] == "TrialEngine"
    parts = module.imports.dotted_parts(receiver)
    if parts:
        return "engine" in parts[-1].lower()
    return False


class UnpicklableWorkerRule(Rule):
    rule_id = "RPL105"
    name = "unpicklable-worker"
    summary = "lambda/nested function passed as a parallel worker callable"
    rationale = (
        "Worker callables cross process boundaries pickled by "
        "reference; lambdas and nested functions cannot be pickled, so "
        "the sweep dies the moment it runs with jobs>1. Define the "
        "worker at module level."
    )

    # ------------------------------------------------------------------
    @staticmethod
    def _nested_def_names(module: ModuleInfo) -> Set[str]:
        """Names of functions defined inside other functions."""
        nested: Set[str] = set()
        for outer in function_defs(module.tree):
            for node in ast.walk(outer):
                if node is outer:
                    continue
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(node.name)
        return nested

    def _worker_hazard(
        self, module: ModuleInfo, worker: ast.AST, nested: Set[str]
    ) -> Optional[str]:
        if isinstance(worker, ast.Lambda):
            return "a lambda"
        if isinstance(worker, ast.Name) and worker.id in nested:
            return f"nested function '{worker.id}'"
        if isinstance(worker, ast.Call):
            canonical = module.resolve(worker.func)
            if canonical and canonical.split(".")[-1] == "partial" and worker.args:
                return self._worker_hazard(module, worker.args[0], nested)
        for node in ast.walk(worker):
            if isinstance(node, ast.Lambda):
                return "a lambda"
        return None

    # ------------------------------------------------------------------
    def check(self, module: ModuleInfo) -> List[Finding]:
        nested = self._nested_def_names(module)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in _ENGINE_METHODS
            ):
                continue
            if not is_engine_receiver(module, func.value):
                continue
            worker = None
            if node.args:
                worker = node.args[0]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "fn":
                        worker = keyword.value
                        break
            if worker is None:
                continue
            hazard = self._worker_hazard(module, worker, nested)
            if hazard is not None:
                findings.append(
                    self.finding(
                        module,
                        worker,
                        f"worker slot of .{func.attr}() receives {hazard}; "
                        "workers are pickled by reference for "
                        "multiprocessing — define the trial function at "
                        "module level",
                    )
                )
        return findings
