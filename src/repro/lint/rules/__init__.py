"""Rule registry: one instance of every rule, ordered by ID.

Adding a rule = write a module under ``repro/lint/rules/``, instantiate
it here, give it a fixture pair under ``tests/lint/fixtures/`` (one
``*_bad.py`` that fires it, one ``*_good.py`` that stays silent), and
document it in README's "Determinism rules" table.
"""

from __future__ import annotations

from typing import List

from .base import Rule
from .cachekeys import CacheKeyRule
from .clock import WallClockRule
from .ordering import SetOrderRule
from .pickling import UnpicklableWorkerRule
from .rng import GlobalRngRule
from .state import GlobalStateRule

__all__ = ["FAMILIES", "RULES", "Rule", "family_of", "rule_by_identifier"]

#: The four static-analysis tiers sharing the RPL namespace (plus the
#: shared parse-error band).  Keyed by rule-ID prefix; every tool's
#: ``--list-rules`` and the README table derive their framing from here
#: so the tiers stay described in one place.
FAMILIES = {
    "RPL1": "determinism lint, per-file (repro-lint)",
    "RPL2": "purity audit, whole-program (repro-audit)",
    "RPL3": "numeric & hot-path analysis (repro-vec)",
    "RPL4": "cache-soundness & config-flow analysis (repro-flow)",
    "RPL9": "parse errors, shared by every tier",
}


def family_of(rule_id: str) -> str:
    """Human framing of a rule's tier (``"RPL301"`` -> the vec tier)."""
    for prefix, description in FAMILIES.items():
        if rule_id.startswith(prefix):
            return description
    return "unknown rule family"

RULES: List[Rule] = sorted(
    [
        GlobalRngRule(),
        GlobalStateRule(),
        WallClockRule(),
        SetOrderRule(),
        UnpicklableWorkerRule(),
        CacheKeyRule(),
    ],
    key=lambda rule: rule.rule_id,
)


def rule_by_identifier(identifier: str) -> Rule:
    """Look up a rule by ID (``RPL104``) or name (``set-order``)."""
    needle = identifier.strip().lower()
    for rule in RULES:
        if needle in (rule.rule_id.lower(), rule.name.lower()):
            return rule
    known = ", ".join(f"{r.rule_id}/{r.name}" for r in RULES)
    raise KeyError(f"unknown rule {identifier!r}; known rules: {known}")
