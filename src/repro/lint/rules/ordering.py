"""RPL104 set-order: unordered iteration feeding RNG or ordered output.

Set iteration order is unspecified — for ``str`` elements it varies
*across processes* with hash randomization (``PYTHONHASHSEED``).  A
loop over a set is therefore fine when its body is order-neutral
(membership counting, max/sum) but silently nondeterministic the
moment the body draws randomness (the draw sequence reorders) or
builds ordered output (lists, dicts keyed in iteration order, yielded
streams).  The fix is one word: iterate ``sorted(...)``.

List/dict comprehensions over a set are flagged unconditionally —
their entire purpose is to build ordered output from the unordered
source.  Set comprehensions and order-neutral reducers are not
matched.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..core import Finding, ModuleInfo
from .base import RNG_DRAW_METHODS, Rule, walk_scope

__all__ = ["SetOrderRule"]

_APPEND_METHODS = frozenset({"append", "appendleft", "extend", "insert", "setdefault"})


def _scopes(tree: ast.Module):
    """Module body plus every function body (each is one name scope)."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


class SetOrderRule(Rule):
    rule_id = "RPL104"
    name = "set-order"
    summary = "iterating a set where order reaches RNG draws or output"
    rationale = (
        "Set iteration order varies with hash randomization (notably "
        "for strings, across processes); when the loop body draws "
        "randomness or builds ordered output the result silently "
        "depends on it. Iterate sorted(...) instead."
    )

    # ------------------------------------------------------------------
    def _set_names(self, module: ModuleInfo, scope_body) -> Set[str]:
        names: Set[str] = set()
        for node in walk_scope(scope_body):
            if isinstance(node, ast.Assign) and self._is_set_expr(module, node.value, ()):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _is_set_expr(
        self, module: ModuleInfo, expr: ast.AST, set_names
    ) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            return module.resolve(expr.func) in ("set", "frozenset")
        if isinstance(expr, ast.Name):
            return expr.id in set_names
        return False

    @staticmethod
    def _body_hazard(body) -> Optional[str]:
        """What the loop body does with iteration order, if anything."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in RNG_DRAW_METHODS:
                        return "draws randomness"
                    if node.func.attr in _APPEND_METHODS:
                        return "appends to ordered results"
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    if any(isinstance(t, ast.Subscript) for t in targets):
                        return "writes keyed results in iteration order"
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return "yields output"
        return None

    # ------------------------------------------------------------------
    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        comp_seen: Set[int] = set()
        for scope_body in _scopes(module.tree):
            set_names = self._set_names(module, scope_body)
            for node in walk_scope(scope_body):
                if isinstance(node, (ast.For, ast.AsyncFor)) and self._is_set_expr(
                    module, node.iter, set_names
                ):
                    hazard = self._body_hazard(node.body + node.orelse)
                    if hazard is not None:
                        findings.append(
                            self.finding(
                                module,
                                node,
                                "loop iterates a set and its body "
                                f"{hazard}; set order varies with hash "
                                "randomization — iterate sorted(...) instead",
                            )
                        )
                elif isinstance(node, (ast.ListComp, ast.DictComp)):
                    if id(node) in comp_seen:
                        continue
                    if any(
                        self._is_set_expr(module, gen.iter, set_names)
                        for gen in node.generators
                    ):
                        comp_seen.add(id(node))
                        kind = "list" if isinstance(node, ast.ListComp) else "dict"
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"{kind} comprehension over a set builds "
                                "ordered output from an unordered source; "
                                "iterate sorted(...) instead",
                            )
                        )
        return findings
