"""RPL101 global-rng: draws must flow through RngStreams/derive_seed.

Calling module-level ``random.*`` or ``numpy.random.*`` functions uses
the *process-global* generator: its state is shared by every component
in the process, so adding, removing, or reordering any consumer of
randomness silently perturbs every other consumer — and two
same-seeded simulator instances stop being bit-identical, which is the
property the parallel trial engine (and every published artifact)
rests on.

Constructing an explicitly seeded generator object is the sanctioned
alternative, so ``random.Random(derive_seed(...))`` and
``numpy.random.default_rng(seed)`` pass; the *zero-argument* forms
seed from OS entropy and are flagged, as are the explicit-``None``
spellings (``default_rng(None)``, ``default_rng(seed=None)``) which
NumPy documents as equivalent to no seed at all.
"""

from __future__ import annotations

import ast
from typing import List

from ..core import Finding, ModuleInfo
from .base import Rule

__all__ = ["GlobalRngRule"]

#: Generator constructors that are deterministic when given a seed (or,
#: for ``Generator``/``RandomState``, an explicit bit generator).
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)


def _explicit_none_seed(node: ast.Call) -> bool:
    """True when a seeded constructor is passed a literal ``None`` seed.

    ``default_rng(None)`` / ``RandomState(seed=None)`` look seeded but
    NumPy treats them exactly like the zero-argument forms: fresh OS
    entropy on every construction.
    """
    if node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) and first.value is None:
            return True
    for keyword in node.keywords:
        if keyword.arg == "seed":
            value = keyword.value
            if isinstance(value, ast.Constant) and value.value is None:
                return True
    return False


class GlobalRngRule(Rule):
    rule_id = "RPL101"
    name = "global-rng"
    summary = "call to the process-global random/numpy.random generator"
    rationale = (
        "Draws from the shared module-level generator couple every "
        "consumer of randomness in the process; derive a stream via "
        "RngStreams/derive_seed (or construct random.Random(seed) / "
        "numpy.random.default_rng(seed) explicitly) instead."
    )

    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = module.resolve(node.func)
            if canonical is None:
                continue
            in_random = canonical.startswith("random.")
            in_np_random = canonical.startswith("numpy.random.")
            if not (in_random or in_np_random):
                continue
            if canonical in _SEEDED_CONSTRUCTORS:
                if (node.args or node.keywords) and not _explicit_none_seed(node):
                    continue  # explicitly seeded construction
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{canonical}() without a seed draws OS entropy; "
                        "pass a seed from RngStreams/derive_seed",
                    )
                )
                continue
            findings.append(
                self.finding(
                    module,
                    node,
                    f"call to process-global {canonical}(); route randomness "
                    "through RngStreams/derive_seed (or a seeded generator "
                    "instance) so draws stay per-instance deterministic",
                )
            )
        return findings
