"""RPL103 wall-clock: real-time reads inside simulation/experiment code.

Simulated time is ``Simulator.now``; experiment inputs are seeds and
configs.  A ``time.time()`` / ``datetime.now()`` read smuggles the
host's wall clock into that world, so two runs of the same seed can
diverge (timestamps in outputs, time-dependent branches, cache keys
that never match).  ``time.perf_counter()`` is deliberately *not*
flagged: measuring how long a trial took (as the trial engine's
metrics do) is observability, not simulation input — the duration
never feeds results.
"""

from __future__ import annotations

import ast
from typing import List

from ..core import Finding, ModuleInfo
from .base import Rule

__all__ = ["WallClockRule"]

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    rule_id = "RPL103"
    name = "wall-clock"
    summary = "wall-clock read in deterministic code"
    rationale = (
        "Simulation and experiment code must take time from the "
        "simulated clock (Simulator.now) and identity from seeds; "
        "host-clock reads make same-seed runs diverge. "
        "time.perf_counter() for timing metrics is allowed."
    )

    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = module.resolve(node.func)
            if canonical in _WALL_CLOCK_CALLS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{canonical}() reads the host wall clock; use the "
                        "simulated clock (Simulator.now) or pass timestamps "
                        "in as config (time.perf_counter() is fine for "
                        "timing metrics)",
                    )
                )
        return findings
