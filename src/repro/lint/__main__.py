"""Allow ``python -m repro.lint`` as an alias for the console script."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
