"""Linter engine: file discovery, parsing, suppression handling.

The engine is deliberately free of rule knowledge: rules (see
:mod:`repro.lint.rules`) receive a parsed :class:`ModuleInfo` and
return :class:`Finding` lists; this module drives them over files,
applies ``# repro-lint:`` suppression comments, and aggregates
everything into a :class:`RunReport` with deterministically sorted
findings (so CI output and the JSON reporter are stable byte-for-byte
across runs and machines).

Suppression syntax (parsed from real comment tokens, so the same text
inside a string literal is inert):

- ``# repro-lint: disable=RPL104 <reason>`` — suppress the named
  rule(s) on this line; comma-separate several IDs; rule *names*
  (``set-order``) work too; ``disable=all`` suppresses every rule.
  The free-text reason after the rule list is required by convention
  (CONTRIBUTING-level policy, not enforced here).
- ``# repro-lint: disable-file <reason>`` within the first
  :data:`FILE_DIRECTIVE_WINDOW` lines — skip the whole file.  Used by
  the linter's own rule-trigger fixtures under ``tests/lint/fixtures``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "FILE_DIRECTIVE_WINDOW",
    "FileReport",
    "Finding",
    "ImportMap",
    "ModuleInfo",
    "PARSE_ERROR_ID",
    "RunReport",
    "Suppressions",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_dotted_path",
    "parse_suppressions",
]

#: Pseudo rule ID for files the parser rejects (not selectable/ignorable
#: by name; a file that does not parse can never be certified clean).
PARSE_ERROR_ID = "RPL900"

#: ``disable-file`` must appear within this many leading lines.
FILE_DIRECTIVE_WINDOW = 5

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,-]+)(?P<reason>\s.*)?$"
)
_DISABLE_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file(?P<reason>\s.*)?$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def module_dotted_path(path: Union[str, Path]) -> Tuple[Optional[str], bool]:
    """Dotted module path of a file, derived from ``__init__.py`` markers.

    Walks up from the file as long as each parent directory is a
    package (contains ``__init__.py``).  Returns ``(dotted, is_package)``
    where ``is_package`` is True for ``__init__.py`` files (whose dotted
    path is the package itself).  A file outside any package returns
    ``(None, False)`` — relative imports cannot be resolved for it.
    """
    file_path = Path(path)
    parts: List[str] = []
    is_package = file_path.name == "__init__.py"
    if not is_package:
        parts.append(file_path.stem)
    parent = file_path.parent
    found_package = False
    while (parent / "__init__.py").exists():
        found_package = True
        parts.append(parent.name)
        parent = parent.parent
    if not found_package:
        return None, False
    return ".".join(reversed(parts)), is_package


class ImportMap:
    """Maps local names to canonical dotted module paths.

    ``import numpy as np`` makes ``np.random.rand`` resolve to
    ``numpy.random.rand``; ``from random import choice`` makes a bare
    ``choice`` resolve to ``random.choice``.  Rules match on the
    canonical form so aliasing cannot dodge them.

    When the module's own dotted path is known (``module=`` plus
    ``is_package=``), package-relative imports resolve too: inside
    ``repro.experiments.figure6``, ``from .base import ExperimentResult``
    canonicalizes to ``repro.experiments.base.ExperimentResult`` and
    ``from . import table1 as t1`` binds ``t1`` to
    ``repro.experiments.table1`` — so intra-repo aliases participate in
    rule matching instead of silently dropping out.
    """

    def __init__(
        self,
        tree: ast.AST,
        module: Optional[str] = None,
        is_package: bool = False,
    ) -> None:
        self.module = module
        self.is_package = is_package
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``; canonical is ``a``.
                        head = alias.name.split(".")[0]
                        self.aliases.setdefault(head, head)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = self._relative_base(node.level)
                    if base is None:
                        continue  # unknown module path: cannot resolve
                else:
                    if node.module is None:
                        continue
                    base = node.module
                prefix = f"{base}.{node.module}" if node.level and node.module else base
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{prefix}.{alias.name}"

    def _relative_base(self, level: int) -> Optional[str]:
        """Package that ``level`` leading dots refer to, or None.

        One dot is the module's own package (for a package's
        ``__init__.py``, the package itself); each extra dot climbs one
        package higher.  Returns None when the module path is unknown
        or the dots climb past the top-level package.
        """
        if not self.module:
            return None
        parts = self.module.split(".")
        if not self.is_package:
            parts = parts[:-1]  # the containing package
        climb = level - 1
        if climb >= len(parts):
            return None
        if climb:
            parts = parts[:-climb]
        if not parts:
            return None
        return ".".join(parts)

    @staticmethod
    def dotted_parts(expr: ast.AST) -> Optional[List[str]]:
        """``a.b.c`` attribute chain as ``["a","b","c"]`` (None if not one)."""
        parts: List[str] = []
        while isinstance(expr, ast.Attribute):
            parts.append(expr.attr)
            expr = expr.value
        if isinstance(expr, ast.Name):
            parts.append(expr.id)
            return list(reversed(parts))
        return None

    def resolve(self, expr: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, or None."""
        parts = self.dotted_parts(expr)
        if not parts:
            return None
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])


@dataclass
class ModuleInfo:
    """Everything a rule needs to inspect one parsed module.

    ``module`` is the dotted import path when known (``None`` for
    sources linted outside any package); with it set, the import map
    resolves package-relative imports to canonical intra-repo names.
    """

    path: str
    source: str
    tree: ast.Module
    imports: ImportMap
    module: Optional[str] = None

    def resolve(self, expr: ast.AST) -> Optional[str]:
        return self.imports.resolve(expr)


@dataclass
class Suppressions:
    """Per-line and whole-file suppression directives of one module."""

    lines: Dict[int, Set[str]] = field(default_factory=dict)
    file_disabled: bool = False

    def covers(self, finding: Finding) -> bool:
        tokens = self.lines.get(finding.line)
        if not tokens:
            return False
        return (
            "all" in tokens
            or finding.rule_id.lower() in tokens
            or finding.rule_name.lower() in tokens
        )


def parse_suppressions(source: str) -> Suppressions:
    """Extract directives from comment tokens (never from strings)."""
    result = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line = tok.start[0]
            match = _DISABLE_FILE_RE.search(tok.string)
            if match and line <= FILE_DIRECTIVE_WINDOW:
                result.file_disabled = True
                continue
            match = _DISABLE_RE.search(tok.string)
            if match:
                names = {
                    part.strip().lower()
                    for part in match.group("rules").split(",")
                    if part.strip()
                }
                result.lines.setdefault(line, set()).update(names)
    except tokenize.TokenError:
        pass  # the ast parse already reports the syntax problem
    return result


@dataclass
class FileReport:
    """Lint outcome for a single file."""

    path: str
    findings: List[Finding]
    suppressed: List[Finding]
    file_suppressed: bool = False


@dataclass
class RunReport:
    """Aggregated outcome of one lint run over many files."""

    files: List[FileReport]

    @property
    def findings(self) -> List[Finding]:
        return sorted(f for report in self.files for f in report.findings)

    @property
    def suppressed(self) -> List[Finding]:
        return sorted(f for report in self.files for f in report.suppressed)

    @property
    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return not self.findings


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[object]:
    from .rules import RULES, rule_by_identifier

    chosen = list(RULES)
    if select is not None:
        wanted = {rule_by_identifier(name).rule_id for name in select}
        chosen = [rule for rule in chosen if rule.rule_id in wanted]
    if ignore is not None:
        dropped = {rule_by_identifier(name).rule_id for name in ignore}
        chosen = [rule for rule in chosen if rule.rule_id not in dropped]
    return chosen


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    suppressions: str = "all",
    module: Optional[str] = None,
    is_package: bool = False,
) -> FileReport:
    """Lint one source string.

    ``suppressions`` controls directive handling: ``"all"`` honours
    line comments and ``disable-file`` (production behaviour),
    ``"line"`` honours only line comments (the fixture self-tests use
    this to look inside intentionally-bad files that carry a
    ``disable-file`` header), ``"none"`` reports everything.

    ``module``/``is_package`` name the source's dotted import path when
    known, enabling relative-import resolution (``lint_file`` derives
    them from ``__init__.py`` markers automatically).
    """
    if suppressions not in ("all", "line", "none"):
        raise ValueError(f"unknown suppressions mode: {suppressions!r}")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=PARSE_ERROR_ID,
            rule_name="parse-error",
            message=f"file does not parse: {exc.msg}",
        )
        return FileReport(path=path, findings=[finding], suppressed=[])

    directives = parse_suppressions(source)
    if suppressions == "all" and directives.file_disabled:
        return FileReport(path=path, findings=[], suppressed=[], file_suppressed=True)

    module = ModuleInfo(
        path=path,
        source=source,
        tree=tree,
        imports=ImportMap(tree, module=module, is_package=is_package),
        module=module,
    )
    raw: List[Finding] = []
    for rule in _select_rules(select, ignore):
        raw.extend(rule.check(module))
    raw.sort()

    if suppressions == "none":
        return FileReport(path=path, findings=raw, suppressed=[])
    kept = [f for f in raw if not directives.covers(f)]
    dropped = [f for f in raw if directives.covers(f)]
    return FileReport(path=path, findings=kept, suppressed=dropped)


def lint_file(
    path: Union[str, Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    suppressions: str = "all",
) -> FileReport:
    """Lint one file from disk (path reported in posix form)."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    dotted, is_package = module_dotted_path(file_path)
    return lint_source(
        source,
        path=file_path.as_posix(),
        select=select,
        ignore=ignore,
        suppressions=suppressions,
        module=dotted,
        is_package=is_package,
    )


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Shared by repro-lint and repro-audit discovery.  Guarantees:

    - deterministic posix-path ordering regardless of input order or
      filesystem enumeration order;
    - duplicate paths (a file named twice, or via its parent directory)
      appear once;
    - symlink loops cannot recurse forever (``**`` globbing does not
      follow directory symlinks);
    - a nonexistent path raises :class:`FileNotFoundError` instead of
      silently linting nothing.
    """
    seen: Set[str] = set()
    collected: List[Tuple[str, Path]] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"), key=lambda p: p.as_posix())
        elif not root.exists():
            raise FileNotFoundError(f"no such lint target: {root}")
        else:
            candidates = [root]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            key = candidate.as_posix()
            if key in seen:
                continue
            seen.add(key)
            collected.append((key, candidate))
    collected.sort(key=lambda pair: pair[0])
    return [path for _, path in collected]


def _lint_file_task(
    task: Tuple[Path, Optional[List[str]], Optional[List[str]], str]
) -> FileReport:
    """Module-level pool worker (picklable by reference, RPL105-clean)."""
    path, select, ignore, suppressions = task
    return lint_file(path, select=select, ignore=ignore, suppressions=suppressions)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    suppressions: str = "all",
    jobs: int = 1,
) -> RunReport:
    """Lint every ``*.py`` under ``paths``; the main library entry point.

    ``jobs > 1`` fans the per-file analysis over a process pool.  Files
    are analyzed independently and reassembled in discovery order, so
    the report — and its rendered text/JSON — is identical to the
    serial run regardless of worker count or scheduling.
    """
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
        raise ValueError(f"jobs must be an integer >= 1, got {jobs!r}")
    files = iter_python_files(paths)
    select = list(select) if select is not None else None
    ignore = list(ignore) if ignore is not None else None
    if jobs > 1 and len(files) > 1:
        import multiprocessing

        tasks = [(path, select, ignore, suppressions) for path in files]
        with multiprocessing.Pool(processes=min(jobs, len(files))) as pool:
            reports = pool.map(_lint_file_task, tasks)
    else:
        reports = [
            lint_file(
                path, select=select, ignore=ignore, suppressions=suppressions
            )
            for path in files
        ]
    return RunReport(files=reports)
