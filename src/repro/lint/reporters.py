"""Finding reporters: human text and machine JSON.

Both render from the same sorted finding list, so output is
byte-stable across runs, worker counts, and machines — the linter
holds itself to the determinism bar it enforces.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .core import RunReport

__all__ = ["JSON_SCHEMA_VERSION", "render_json", "render_text", "summary_dict"]

#: Bump when the JSON envelope shape changes (consumed by CI tooling).
JSON_SCHEMA_VERSION = 1


def summary_dict(report: RunReport) -> Dict[str, Any]:
    return {
        "files": len(report.files),
        "files_suppressed": sum(1 for f in report.files if f.file_suppressed),
        "findings": len(report.findings),
        "suppressed": len(report.suppressed),
        "by_rule": report.counts_by_rule,
    }


def render_text(report: RunReport, prog: str = "repro-lint") -> str:
    """One ``path:line:col: ID [name] message`` line per finding + summary.

    ``prog`` labels the summary line; ``repro-audit`` reuses this
    renderer over its own findings.
    """
    lines = [
        f"{finding.location()}: {finding.rule_id} [{finding.rule_name}] "
        f"{finding.message}"
        for finding in report.findings
    ]
    summary = summary_dict(report)
    if summary["findings"]:
        per_rule = ", ".join(
            f"{rule_id}:{count}"
            for rule_id, count in sorted(summary["by_rule"].items())
        )
        lines.append(
            f"{prog}: {summary['findings']} finding(s) in "
            f"{summary['files']} file(s) [{per_rule}] "
            f"({summary['suppressed']} suppressed)"
        )
    else:
        lines.append(
            f"{prog}: clean — {summary['files']} file(s), "
            f"{summary['suppressed']} finding(s) suppressed, "
            f"{summary['files_suppressed']} file(s) skipped by directive"
        )
    return "\n".join(lines)


def render_json(report: RunReport) -> str:
    """Stable-schema JSON: ``{"version", "findings", "summary"}``."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule_id,
                "name": finding.rule_name,
                "message": finding.message,
            }
            for finding in report.findings
        ],
        "summary": summary_dict(report),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
