"""``repro-check``: the four static-analysis tiers as one gate.

Runs, in tier order, ``repro-lint`` (RPL1xx, per-file determinism),
``repro-audit`` (RPL2xx, whole-program purity), ``repro-vec`` (RPL3xx,
numeric/hot-path), and ``repro-flow`` (RPL4xx, cache soundness) with
their production defaults, merging their exit codes: the umbrella
exits with the *worst* tool status (0 clean, 1 findings or manifest
drift, 2 usage error), so one CI job can gate on the whole RPL
namespace.

``--check-manifests`` forwards ``--check-manifest`` to every
manifest-bearing tier (audit, vec, flow), making this the single
command CI runs.  ``--format json`` emits one merged machine-readable
report — each tool's own JSON report nested under its name plus the
per-tool exit codes — for failure triage without re-running anything.

Usage::

    repro-check                      # all four tiers, text reports
    repro-check --check-manifests    # CI gate incl. manifest drift
    repro-check --format json        # one merged JSON report
    repro-check --skip lint,vec      # run a subset
"""

from __future__ import annotations

import argparse
import io
import json
import sys
from contextlib import redirect_stdout
from typing import Any, Callable, Dict, List, Optional, Tuple

from .audit.cli import main as audit_main
from .flow.cli import main as flow_main
from .lint.cli import main as lint_main
from .vec.cli import main as vec_main

__all__ = ["TOOLS", "main", "run_tools"]

#: (name, entry point, base argv, takes --check-manifest), tier order.
TOOLS: Tuple[Tuple[str, Callable[[List[str]], int], List[str], bool], ...] = (
    ("lint", lint_main, ["src", "benchmarks", "tests", "examples"], False),
    ("audit", audit_main, [], True),
    ("vec", vec_main, [], True),
    ("flow", flow_main, [], True),
)


def _tool_argv(
    base: List[str], fmt: str, manifests: bool, gated: bool
) -> List[str]:
    argv = list(base) + ["--format", fmt]
    if manifests and gated:
        argv.append("--check-manifest")
    return argv


def _parse_leading_json(text: str) -> Optional[Any]:
    """The tool's JSON document, ignoring trailing manifest chatter."""
    try:
        document, _index = json.JSONDecoder().raw_decode(text.lstrip())
    except (json.JSONDecodeError, ValueError):
        return None
    return document


def run_tools(
    names: List[str], fmt: str, manifests: bool
) -> Tuple[int, Dict[str, Dict[str, Any]]]:
    """Run the selected tools; return (merged status, per-tool results)."""
    status = 0
    results: Dict[str, Dict[str, Any]] = {}
    for name, entry, base, gated in TOOLS:
        if name not in names:
            continue
        argv = _tool_argv(base, fmt, manifests, gated)
        if fmt == "json":
            buffer = io.StringIO()
            with redirect_stdout(buffer):
                exit_code = entry(argv)
            results[name] = {
                "exit": exit_code,
                "report": _parse_leading_json(buffer.getvalue()),
            }
        else:
            print(f"== repro-{name} ==")
            exit_code = entry(argv)
            results[name] = {"exit": exit_code}
        status = max(status, exit_code)
    return status, results


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Run every static-analysis tier (repro-lint, repro-audit, "
            "repro-vec, repro-flow) and exit with the worst tool status."
        ),
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=("text", "json"),
        default="text",
        help="per-tool text reports, or one merged JSON report",
    )
    parser.add_argument(
        "--check-manifests",
        action="store_true",
        help=(
            "forward --check-manifest to every manifest-bearing tier "
            "(audit, vec, flow)"
        ),
    )
    parser.add_argument(
        "--skip",
        action="append",
        metavar="TOOLS",
        help="comma-separated tool names to skip (lint, audit, vec, flow)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    known = [name for name, _entry, _base, _gated in TOOLS]
    skipped = [
        part.strip()
        for chunk in (args.skip or [])
        for part in chunk.split(",")
        if part.strip()
    ]
    unknown = [name for name in skipped if name not in known]
    if unknown:
        print(
            f"repro-check: error: unknown tool(s): {', '.join(unknown)}; "
            f"known tools: {', '.join(known)}",
            file=sys.stderr,
        )
        return 2
    names = [name for name in known if name not in skipped]
    if not names:
        print("repro-check: error: every tool skipped", file=sys.stderr)
        return 2

    status, results = run_tools(names, args.format, args.check_manifests)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "status": status,
                    "manifests_checked": bool(args.check_manifests),
                    "tools": results,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        summary = " ".join(
            f"{name}={results[name]['exit']}" for name in names
        )
        print(f"repro-check: {summary} -> exit {status}")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via the script
    sys.exit(main())
