"""Legacy setup shim: environments without the `wheel` package cannot do
PEP 660 editable installs; `python setup.py develop` still works."""
from setuptools import setup

setup()
