"""Spatial partitioning campaign (paper §V-A) end to end.

    python examples/spatial_hijack_campaign.py

Scenario: a malicious AS evaluates all five Figure-4 targets by
effort-vs-advantage, hijacks the best one against a live network,
isolates 60%+ of the mining power via stratum servers (Table IV), and
is finally undone by the route-purging countermeasure (§VI).
"""

from repro import Network, NetworkConfig, SpatialAttack, StratumIsolation, build_paper_topology
from repro.analysis.hijack import hijack_curve
from repro.countermeasures.routing import RouteGuard
from repro.reporting.tables import format_table

FIGURE4_ASES = (24940, 16276, 37963, 16509, 14061)


def main() -> None:
    topology = build_paper_topology(seed=11)

    # 1. Figure 4: effort-vs-advantage across the candidate targets.
    rows = []
    for asn in FIGURE4_ASES:
        curve = hijack_curve(topology.pool(asn))
        rows.append(
            (
                f"AS{asn}",
                curve.total_nodes,
                curve.total_prefixes,
                curve.hijacks_for(0.80) or "-",
                curve.hijacks_for(0.95) or ">160",
            )
        )
    print(
        format_table(
            ["Target", "Nodes", "Prefixes", "k for 80%", "k for 95%"],
            rows,
            title="Hijack cost per target (Figure 4)",
        )
    )

    # 2. Hijack the cheapest target against a live network slice.
    # Node ids are shared with the topology: ids 0-1029 are AS24940,
    # so the network must span further and the honest miner must live
    # outside the target AS.
    net = Network(NetworkConfig(num_nodes=1500, seed=11, failure_rate=0.05))
    net.add_pool("honest", 0.8, node_id=1100)  # a node in AS16276
    attack = SpatialAttack(
        topology, attacker_asn=666, target_asn=24940, target_fraction=0.95
    )
    table = topology.build_routing_table()
    result = attack.execute(table=table, network=net)
    print(
        f"\nexecuted: {result.effort:.0f} bogus prefixes -> "
        f"{result.metric('captured_fraction'):.1%} of AS24940 eclipsed"
    )
    net.run_for(3 * 3600)
    tip = net.network_height()
    victims_in_net = [v for v in result.victims if v in net.nodes]
    lagging = sum(1 for v in victims_in_net if net.node(v).lag(tip) >= 1)
    print(f"after 3h: {lagging}/{len(victims_in_net)} eclipsed nodes lag the chain")

    # 3. Mining isolation: 3 ASes carry >60% of hash power (Table IV).
    isolation = StratumIsolation(target_hash_share=0.60)
    iso_result = isolation.execute()
    print(
        f"\nstratum isolation: hijacking ASes {isolation.plan()} severs "
        f"{iso_result.metric('isolated_hash_share'):.1%} of the hash rate"
    )

    # 4. Countermeasure: purge bogus routes, promote legitimate ones.
    guard = RouteGuard(topology)
    stats = guard.purge_and_promote(table)
    healed = sum(
        1
        for v in victims_in_net
        if table.origin_of(topology.ip_of(v)) == 24940
    )
    net.heal(victims_in_net)
    print(
        f"\nroute guard: purged {stats['purged']} bogus routes, "
        f"re-promoted {stats['promoted']}; {healed}/{len(victims_in_net)} "
        "victims route legitimately again"
    )


if __name__ == "__main__":
    main()
