"""The §V-C case study: a cloud provider with both capabilities.

    python examples/spatiotemporal_case_study.py

The paper's scenario: an adversary with routing *and* mining power
watches the one-day lag series (Figure 8), waits for the moment when
synced nodes bottom out, hijacks the top synced-node ASes (Table VII),
and temporally attacks the lagging remainder.
"""

import numpy as np

from repro import (
    ConsensusDynamicsGenerator,
    Network,
    NetworkConfig,
    SpatioTemporalAttack,
    build_paper_topology,
)
from repro.attacks.spatiotemporal import SpatioTemporalPlan
from repro.experiments.table7 import PAPER_DAY_AS_QUALITY, PAPER_DAY_DEFAULT_QUALITY
from repro.reporting.figures import sparkline
from repro.reporting.tables import format_table


def main() -> None:
    topology = build_paper_topology(seed=31, scale=0.2)
    node_ids = sorted(topology.all_node_ids())
    node_asns = np.array([topology.asn_of(n) for n in node_ids])

    # ------------------------------------------------------------------
    # 1. One recorded day (Figure 8(a)): find the strike moment.
    # ------------------------------------------------------------------
    series = ConsensusDynamicsGenerator(
        num_nodes=len(node_ids),
        seed=31,
        node_asns=node_asns,
        as_quality=PAPER_DAY_AS_QUALITY,
        default_quality=PAPER_DAY_DEFAULT_QUALITY,
    ).generate(duration=86_400, sample_interval=600.0)

    synced_series = (series.lags == 0).sum(axis=1)
    print("synced nodes over the day:")
    print(" ", sparkline(synced_series.tolist()))

    plan = SpatioTemporalPlan.from_series(series, topology=topology)
    print(
        f"\nstrike at t={plan.strike_time:.0f}s: {plan.synced_count} synced, "
        f"{plan.lagging_count} lagging"
    )
    rows = [
        (f"AS{asn}", topology.orgs.get(topology.ases.get(asn).org_id).name)
        for asn in plan.target_asns
    ]
    print(
        format_table(
            ["AS", "Organization"],
            rows,
            title=f"\nSpatial targets (host {plan.spatial_coverage:.0%} of synced nodes)",
        )
    )

    # ------------------------------------------------------------------
    # 2. Execute both halves on a live simulation slice.
    # ------------------------------------------------------------------
    net = Network(NetworkConfig(num_nodes=400, seed=31, failure_rate=0.05))
    net.add_pool("honest", 0.65, node_id=2)
    net.eclipse([390, 391, 392, 393, 394])  # pre-existing laggards
    net.run_for(5 * 3600)
    net.heal([390, 391, 392, 393, 394])

    attack = SpatioTemporalAttack(
        network=net,
        topology=topology,
        attacker_node=0,
        attacker_asn=666,
        hash_share=0.30,
        num_target_ases=3,
    )
    result = attack.execute(duration=6 * 3600)
    print(
        f"\ncombined attack: hijacked {result.metric('hijacked_ases'):.0f} ASes "
        f"({result.metric('hijacked_prefixes'):.0f} prefixes), eclipsed "
        f"{result.metric('eclipsed'):.0f} nodes, misled "
        f"{result.metric('misled'):.0f}; disrupted "
        f"{result.metric('disrupted_fraction'):.1%} of the network"
    )


if __name__ == "__main__":
    main()
