"""Transaction-level damage of a partition (paper §V-B implications).

    python examples/partition_damage_report.py

Scenario: a payment workload runs across the network while a spatial
partition splits it.  The report quantifies what the paper warns about:
diverging confirmations between the two sides, stalled throughput in
the minority partition, and the UTXO reversals on reunification.
"""

from repro import Network, NetworkConfig
from repro.datagen.workload import TransactionWorkload, WorkloadConfig
from repro.netsim.latency import ConstantLatency
from repro.reporting.tables import format_table


def main() -> None:
    net = Network(
        NetworkConfig(num_nodes=80, seed=71, failure_rate=0.02),
        latency=ConstantLatency(0.15),
    )
    net.add_pool("majority-pool", 0.7, node_id=0)
    net.add_pool("minority-pool", 0.3, node_id=60)

    workload = TransactionWorkload(
        net, WorkloadConfig(num_wallets=10, tx_rate=0.02)
    )
    workload.start()
    net.run_for(4 * 3600)

    baseline_rate = workload.confirmation_rate(0)
    print(f"healthy network, 4h: confirmation rate {baseline_rate:.0%}")

    # Partition: nodes 60-79 (with the 30% pool) are cut off.
    minority = list(range(60, 80))
    net.eclipse(minority)
    net.run_for(8 * 3600)

    majority_height = net.node(0).height
    minority_height = net.node(60).height
    divergence = workload.divergent_confirmations(0, 60)
    print(
        format_table(
            ["Metric", "Majority side", "Minority side"],
            [
                ("chain height", majority_height, minority_height),
                (
                    "confirmation rate",
                    f"{workload.confirmation_rate(0):.0%}",
                    f"{workload.confirmation_rate(60):.0%}",
                ),
            ],
            title="\nafter 8h of partition",
        )
    )
    print(f"transactions confirmed on exactly one side: {divergence}")

    # Reunification: the longest chain wins; the minority side reorgs.
    net.heal(minority)
    net.run_for(6 * 3600)
    reorgs = net.node(60).stats.reorgs
    deepest = net.node(60).stats.deepest_reorg
    final_divergence = workload.divergent_confirmations(0, 60)
    print(
        f"\nafter reunification: minority node reorged {reorgs}x "
        f"(deepest {deepest} blocks); residual divergence "
        f"{final_divergence} transactions"
    )
    print(
        "every transaction confirmed only on the minority chain was "
        "reversed — the paper's 'major update on the set of all UTXOs'."
    )


if __name__ == "__main__":
    main()
