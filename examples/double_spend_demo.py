"""Double spending across a temporal partition (paper §V-B implications).

    python examples/double_spend_demo.py

Scenario: a merchant (full node tracking its UTXO set) accepts a
payment that confirms on a counterfeit branch fed by a 30% attacker.
When the partition heals, the merchant's chain reorganizes, the payment
is reversed, and the attacker's conflicting self-spend stands — the
"major update on the set of all UTXOs" the paper warns about.  The
economics module then prices the asymmetry.
"""

from repro import Network, NetworkConfig
from repro.analysis.economics import EconomicModel
from repro.attacks.doublespend import DoubleSpendAttack
from repro.netsim.latency import ConstantLatency


def main() -> None:
    merchant = 5
    net = Network(
        NetworkConfig(
            num_nodes=40,
            seed=33,
            failure_rate=0.0,
            track_utxo_nodes=(merchant,),
        ),
        latency=ConstantLatency(0.1),
    )
    net.add_pool("honest", 0.7, node_id=1)

    attack = DoubleSpendAttack(
        net, attacker_node=0, victim_node=merchant, amount=25, hash_share=0.30
    )
    result, outcome = attack.execute(
        setup_time=4 * 3600, attack_time=8 * 3600, recovery_time=10 * 3600
    )

    print("double-spend timeline:")
    print(
        f"  during the partition: payment confirmed = "
        f"{outcome.payment_confirmed_at_peak}, merchant balance = "
        f"{outcome.victim_balance_before}"
    )
    print(
        f"  after recovery:       payment survived  = "
        f"{outcome.payment_survived_recovery}, merchant balance = "
        f"{outcome.victim_balance_after} "
        f"(reorg depth {outcome.reorg_depth})"
    )
    print(f"  outcome: {result.outcome.value}")

    # The §V-B asymmetry: value at risk vs the attacker's rental cost.
    model = EconomicModel()
    economics = model.price_temporal(result, duration_hours=8.0, hash_share=0.30)
    print(
        f"\neconomics: value at risk ${economics.value_at_risk:,.0f} vs "
        f"attack cost ${economics.attack_cost:,.0f} "
        f"(leverage {economics.leverage:,.0f}x)"
    )


if __name__ == "__main__":
    main()
