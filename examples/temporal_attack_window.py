"""Temporal partitioning with optimized target selection (paper §V-B).

    python examples/temporal_attack_window.py

Scenario: a malicious mining pool with 30% hash power crawls the
network's consensus lag (Figure 6 data), runs the Table V window
optimization and the Table VI timing bound to pick its victims, feeds
them a counterfeit chain on a live simulation, and is finally defeated
by the BlockAware countermeasure (§VI).
"""

from repro import (
    BlockAware,
    BlockAwareConfig,
    ConsensusDynamicsGenerator,
    Network,
    NetworkConfig,
    TemporalAttack,
    TemporalAttackPlan,
)
from repro.analysis.vulnerable import vulnerable_table
from repro.reporting.tables import format_table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Reconnaissance: one day of per-minute lag data (Figure 6(c)).
    # ------------------------------------------------------------------
    series = ConsensusDynamicsGenerator(num_nodes=4000, seed=21).generate(
        duration=86_400, sample_interval=60.0
    )
    table = vulnerable_table(series, t_values=(5, 10, 15, 30), lag_thresholds=(1, 2, 5))
    rows = [
        (t, *(f"{c.max_nodes} ({c.percentage:.1f}%)" for c in cells))
        for t, cells in table.items()
    ]
    print(
        format_table(
            ["T (min)", ">=1 block", ">=2 blocks", ">=5 blocks"],
            rows,
            title="Vulnerable-node windows (Table V form)",
        )
    )

    # ------------------------------------------------------------------
    # 2. Planning: how long to isolate m victims (Table VI bound)?
    # ------------------------------------------------------------------
    plan = TemporalAttackPlan.from_series(
        series, window_minutes=10, rate=0.8, victim_cap=500
    )
    print(
        f"\nplan: isolate {plan.victim_count} nodes within "
        f"{plan.min_time_seconds}s (window {plan.window_minutes} min) "
        f"-> {'feasible' if plan.feasible else 'infeasible'}"
    )

    # ------------------------------------------------------------------
    # 3. Execution on a live network: eclipse a few nodes to create
    #    laggards, then feed them the counterfeit chain.
    # ------------------------------------------------------------------
    net = Network(NetworkConfig(num_nodes=150, seed=21, failure_rate=0.05))
    net.add_pool("honest", 0.7, node_id=1)
    victims_seed = [120, 121, 122, 123]
    net.eclipse(victims_seed)
    net.run_for(6 * 3600)

    attack = TemporalAttack(
        net,
        attacker_node=0,
        hash_share=0.30,
        min_lag=1,
        max_victims=8,  # target the deepest laggards only
        sever_victims=True,
    )
    victims = attack.launch()
    net.run_for(8 * 3600)
    result = attack.measure()
    print(
        f"\nattack: fed {result.metric('counterfeit_blocks'):.0f} counterfeit "
        f"blocks; {result.metric('misled'):.0f}/{result.metric('targeted'):.0f} "
        f"victims follow the bogus chain "
        f"(network partitioned: {result.metric('partitioned_fraction'):.1%})"
    )
    attack.stop()

    # ------------------------------------------------------------------
    # 4. Defense: BlockAware notices the ~2000 s counterfeit interval.
    # ------------------------------------------------------------------
    net.heal(victims)
    monitor = BlockAware(
        net, BlockAwareConfig(probe_random_nodes=3), node_ids=list(victims)
    )
    monitor.start()
    net.run_for(4 * 3600)
    recovered = sum(
        1 for v in victims if net.node(v).tree.counterfeit_on_main() == 0
    )
    print(
        f"\nBlockAware: {len(monitor.alerts)} staleness alerts, "
        f"{recovered}/{len(victims)} victims back on the honest chain"
    )


if __name__ == "__main__":
    main()
