"""Logical partitioning audit (paper §V-D).

    python examples/logical_partition_audit.py

Scenario: audit the network's software diversity (Table VIII), join it
against the NVD records the paper cites, quantify the blast radius of
exploiting each CVE, and model the reach of a malicious client variant
gaining adoption.
"""

from repro import LogicalAttack, PopulationGenerator, build_paper_topology
from repro.reporting.tables import format_table


def main() -> None:
    topology = build_paper_topology(seed=41)
    snapshot = PopulationGenerator(topology, seed=41).generate()
    attack = LogicalAttack(snapshot)
    report = attack.assess()

    # 1. The Table VIII census.
    top = sorted(report.version_shares.items(), key=lambda kv: -kv[1])[:5]
    print(
        format_table(
            ["Version", "Share"],
            [(version, f"{share:.2%}") for version, share in top],
            title=f"Software census ({report.distinct_versions} distinct variants)",
        )
    )

    # 2. CVE exposure (the §V-D NVD join).
    print(
        format_table(
            ["CVE", "Nodes affected"],
            [
                (cve, f"{fraction:.1%}")
                for cve, fraction in sorted(
                    report.cve_exposure.items(), key=lambda kv: -kv[1]
                )
            ],
            title="\nVulnerability exposure",
        )
    )

    # 3. Blast radius of the duplicate-inputs DoS (CVE-2018-17144).
    result = attack.execute_crash("CVE-2018-17144")
    print(
        f"\nexploiting CVE-2018-17144 network-wide crashes "
        f"{result.num_victims} nodes ({result.metric('crashed_fraction'):.0%} "
        "of the reachable network) with a single malformed transaction"
    )

    # 4. Malicious-client adoption: the Falcon-style scenario.
    rows = []
    for adoption in (0.01, 0.05, 0.10, 0.25):
        reach = attack.adoption_reach(adoption, peers_per_node=8)
        rows.append(
            (
                f"{adoption:.0%}",
                f"{reach['direct']:.1%}",
                f"{reach['relay']:.1%}",
                f"{reach['combined']:.1%}",
            )
        )
    print(
        format_table(
            ["Adoption", "Direct", "Relay reach", "Combined"],
            rows,
            title="\nMalicious client reach vs adoption (8 peers/node)",
        )
    )


if __name__ == "__main__":
    main()
