"""Quickstart: build the paper-calibrated world and poke at it.

Runs in a few seconds::

    python examples/quickstart.py

Walks through the library's layers: the calibrated Internet topology
(Table II), a synthetic Bitnodes snapshot (Table I / §IV-C), a live
P2P simulation with mining, and one spatial hijack with its cost curve
(Figure 4).
"""

from repro import (
    Network,
    NetworkConfig,
    PopulationGenerator,
    SpatialAttack,
    build_paper_topology,
)
from repro.analysis.centralization import coverage_count, top_entities
from repro.reporting.tables import format_table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The spatial ground truth: 13,635 nodes over 1,660 ASes.
    # ------------------------------------------------------------------
    topology = build_paper_topology(seed=7)
    counts = topology.nodes_per_as()
    print(f"nodes: {topology.num_nodes}, ASes: {len(topology.ases)}")
    print(
        f"ASes hosting 30% / 50% of nodes: "
        f"{coverage_count(counts, 0.30)} / {coverage_count(counts, 0.50)}"
    )
    rows = [
        (topology.ases.get(asn).name, nodes, f"{pct:.2f}%")
        for asn, nodes, pct in top_entities(counts, k=5)
    ]
    print(format_table(["AS", "Nodes", "Share"], rows, title="\nTop-5 ASes"))

    # ------------------------------------------------------------------
    # 2. A Bitnodes-style snapshot of the population (Table I).
    # ------------------------------------------------------------------
    snapshot = PopulationGenerator(topology, seed=7).generate()
    summary = snapshot.summary()
    print(
        f"\nsnapshot: {summary['total']:.0f} nodes, "
        f"{summary['up']:.0f} up, {summary['synced']:.0f} synced"
    )

    # ------------------------------------------------------------------
    # 3. A live P2P simulation: 200 nodes, two pools, two hours.
    # ------------------------------------------------------------------
    net = Network(NetworkConfig(num_nodes=200, seed=7, failure_rate=0.1))
    net.add_pool("big-pool", 0.7, node_id=0)
    net.add_pool("small-pool", 0.3, node_id=1)
    net.run_for(2 * 3600)
    lags = net.lags()
    synced = sum(1 for lag in lags.values() if lag == 0)
    print(
        f"\nsimulated 2h: height={net.network_height()}, "
        f"{synced}/200 nodes synced"
    )

    # ------------------------------------------------------------------
    # 4. One BGP hijack against Hetzner's AS (the Figure 4 headline).
    # ------------------------------------------------------------------
    attack = SpatialAttack(
        topology, attacker_asn=666, target_asn=24940, target_fraction=0.95
    )
    result = attack.execute()
    print(
        f"\nhijacked AS24940 with {result.effort:.0f} prefix announcements: "
        f"captured {result.num_victims} of 1030 nodes "
        f"({result.metric('captured_fraction'):.1%})"
    )


if __name__ == "__main__":
    main()
